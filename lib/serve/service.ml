open Cacti_util

(* Latency histogram: bucket i counts requests with wall time in
   [2^i, 2^(i+1)) microseconds; 28 buckets span 1 us .. ~2.2 min. *)
let n_buckets = 28

type counters = {
  mutable c_lines : int;
      (** every non-empty input line, counted once at entry (transport
          invariant: [c_lines] = sum of the outcome counters) *)
  mutable c_cache : int;
  mutable c_ram : int;
  mutable c_mainmem : int;
  mutable c_stats : int;
  mutable c_malformed : int;  (** lines that never decoded to a request *)
  mutable c_worker_faults : int;
      (** exceptions that escaped a queue worker's job (also counted under
          [o_internal_error]) *)
  mutable o_ok : int;
  mutable o_invalid : int;  (** bad request / bad spec / bad params *)
  mutable o_no_solution : int;
  mutable o_internal_error : int;  (** contained exception *)
  mutable o_overloaded : int;
  mutable o_deadline_exceeded : int;  (** shed in queue or cancelled mid-solve *)
  mutable o_draining : int;  (** refused or cancelled by a drain *)
  mutable lat_sum_ms : float;
  mutable lat_count : int;
  lat_buckets : int array;
}

(* One admitted request, parsed exactly once at the transport edge. *)
type job = {
  j_json : Jsonx.t;
  j_id : Jsonx.t;
  j_reply : string -> unit;
  j_admitted : float;
  j_deadline : float;  (** absolute; [infinity] when no deadline *)
}

type t = {
  jobs : int option;
  queue_bound : int;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;  (** workers exit once the queue drains *)
  mutable is_draining : bool;  (** new admissions refused *)
  in_flight : int Atomic.t;  (** jobs dequeued, response not yet written *)
  drain : Cancel.t;  (** parent token of every solve; fired to cancel *)
  log : Diag.t -> unit;
  clock : Mutex.t;  (** guards [counters] *)
  counters : counters;
  started_at : float;
}

let create ?jobs ?(queue_bound = 64)
    ?(log = fun d -> prerr_endline (Diag.to_string d)) () =
  if queue_bound < 1 then
    invalid_arg "Service.create: queue_bound must be positive";
  {
    jobs;
    queue_bound;
    queue = Queue.create ();
    qlock = Mutex.create ();
    qcond = Condition.create ();
    stopping = false;
    is_draining = false;
    in_flight = Atomic.make 0;
    drain = Cancel.create ~reason:"drain" ();
    log;
    clock = Mutex.create ();
    counters =
      {
        c_lines = 0;
        c_cache = 0;
        c_ram = 0;
        c_mainmem = 0;
        c_stats = 0;
        c_malformed = 0;
        c_worker_faults = 0;
        o_ok = 0;
        o_invalid = 0;
        o_no_solution = 0;
        o_internal_error = 0;
        o_overloaded = 0;
        o_deadline_exceeded = 0;
        o_draining = 0;
        lat_sum_ms = 0.;
        lat_count = 0;
        lat_buckets = Array.make n_buckets 0;
      };
    started_at = Unix.gettimeofday ();
  }

(* --------------------------- accounting ----------------------------- *)

let count_line t =
  Mutex.protect t.clock (fun () ->
      t.counters.c_lines <- t.counters.c_lines + 1)

let count_kind t kind =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match kind with
      | `Cache -> c.c_cache <- c.c_cache + 1
      | `Ram -> c.c_ram <- c.c_ram + 1
      | `Mainmem -> c.c_mainmem <- c.c_mainmem + 1
      | `Stats -> c.c_stats <- c.c_stats + 1
      | `Malformed -> c.c_malformed <- c.c_malformed + 1)

let count_outcome t outcome =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match outcome with
      | `Ok -> c.o_ok <- c.o_ok + 1
      | `Invalid -> c.o_invalid <- c.o_invalid + 1
      | `No_solution -> c.o_no_solution <- c.o_no_solution + 1
      | `Internal_error -> c.o_internal_error <- c.o_internal_error + 1
      | `Overloaded -> c.o_overloaded <- c.o_overloaded + 1
      | `Deadline_exceeded ->
          c.o_deadline_exceeded <- c.o_deadline_exceeded + 1
      | `Draining -> c.o_draining <- c.o_draining + 1)

let count_worker_fault t =
  Mutex.protect t.clock (fun () ->
      t.counters.c_worker_faults <- t.counters.c_worker_faults + 1)

let bucket_of_ms ms =
  let us = ms *. 1e3 in
  if us < 1. then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 us))

let record_latency t ms =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      c.lat_sum_ms <- c.lat_sum_ms +. ms;
      c.lat_count <- c.lat_count + 1;
      let b = bucket_of_ms ms in
      c.lat_buckets.(b) <- c.lat_buckets.(b) + 1)

(* Percentile estimate from the histogram: the geometric middle of the
   bucket where the cumulative count crosses the quantile.  Good to a
   factor of sqrt(2) — plenty for a live dashboard; the benchmark computes
   exact percentiles from raw samples. *)
let percentile_ms buckets total q =
  if total = 0 then 0.
  else begin
    let target = Float.of_int total *. q in
    let cum = ref 0 and found = ref (n_buckets - 1) and looking = ref true in
    Array.iteri
      (fun i n ->
        if !looking then begin
          cum := !cum + n;
          if Float.of_int !cum >= target then begin
            found := i;
            looking := false
          end
        end)
      buckets;
    (* bucket i spans [2^i, 2^(i+1)) us; geometric mid = 2^(i+0.5) us *)
    Float.pow 2. (Float.of_int !found +. 0.5) /. 1e3
  end

let queue_depth t = Mutex.protect t.qlock (fun () -> Queue.length t.queue)
let in_flight t = Atomic.get t.in_flight
let draining t = t.is_draining

let idle t =
  Mutex.protect t.qlock (fun () -> Queue.is_empty t.queue)
  && Atomic.get t.in_flight = 0

(* When should a refused client retry?  Rough but self-correcting: the
   mean observed solve latency times the work queued ahead of it. *)
let retry_after_ms t depth =
  let mean =
    Mutex.protect t.clock (fun () ->
        let c = t.counters in
        if c.lat_count = 0 then 50.
        else c.lat_sum_ms /. Float.of_int c.lat_count)
  in
  Float.max 1. (mean *. Float.of_int (depth + 1))

let stats_json t =
  let sc = Cacti.Solve_cache.stats () in
  let size = Cacti.Solve_cache.size () in
  let cap = Cacti.Solve_cache.capacity () in
  let ms = Cacti.Solve_cache.mat_stats () in
  let msize = Cacti.Solve_cache.mat_size () in
  let mcap = Cacti.Solve_cache.mat_capacity () in
  let inc = Cacti.Solve_cache.incremental_stats () in
  (* Per-phase wall clock since startup; populated when phase accounting
     is on (the server binary enables it at launch). *)
  let phases = Cacti_util.Profile.summary () in
  let depth = queue_depth t in
  let inflight = Atomic.get t.in_flight in
  let c = t.counters in
  Mutex.protect t.clock (fun () ->
      let lookups = sc.Cacti.Solve_cache.hits + sc.Cacti.Solve_cache.misses in
      let hit_rate =
        if lookups = 0 then 0.
        else Float.of_int sc.Cacti.Solve_cache.hits /. Float.of_int lookups
      in
      Jsonx.Obj
        [
          ( "requests",
            Jsonx.Obj
              [
                ("lines", Jsonx.Int c.c_lines);
                ("cache", Jsonx.Int c.c_cache);
                ("ram", Jsonx.Int c.c_ram);
                ("mainmem", Jsonx.Int c.c_mainmem);
                ("stats", Jsonx.Int c.c_stats);
                ("malformed", Jsonx.Int c.c_malformed);
              ] );
          ( "outcomes",
            Jsonx.Obj
              [
                ("ok", Jsonx.Int c.o_ok);
                ("invalid", Jsonx.Int c.o_invalid);
                ("no_solution", Jsonx.Int c.o_no_solution);
                ("internal_error", Jsonx.Int c.o_internal_error);
                ("overloaded", Jsonx.Int c.o_overloaded);
                ("deadline_exceeded", Jsonx.Int c.o_deadline_exceeded);
                ("draining", Jsonx.Int c.o_draining);
              ] );
          ( "faults",
            Jsonx.Obj [ ("worker", Jsonx.Int c.c_worker_faults) ] );
          ( "solve_cache",
            Jsonx.Obj
              [
                ("hits", Jsonx.Int sc.Cacti.Solve_cache.hits);
                ("misses", Jsonx.Int sc.Cacti.Solve_cache.misses);
                ("size", Jsonx.Int size);
                ( "capacity",
                  match cap with None -> Jsonx.Null | Some n -> Jsonx.Int n );
                ("hit_rate", Jsonx.num hit_rate);
              ] );
          ( "mat_memo",
            Jsonx.Obj
              [
                ("hits", Jsonx.Int ms.Cacti.Solve_cache.hits);
                ("misses", Jsonx.Int ms.Cacti.Solve_cache.misses);
                ("size", Jsonx.Int msize);
                ( "capacity",
                  match mcap with None -> Jsonx.Null | Some n -> Jsonx.Int n
                );
              ] );
          ( "incremental",
            Jsonx.Obj
              [
                ("full_hits", Jsonx.Int inc.Cacti.Solve_cache.full_hits);
                ("rows_hits", Jsonx.Int inc.Cacti.Solve_cache.rows_hits);
                ("misses", Jsonx.Int inc.Cacti.Solve_cache.misses);
              ] );
          ( "phases",
            Jsonx.Obj
              (List.map
                 (fun (phase, secs, calls) ->
                   ( phase,
                     Jsonx.Obj
                       [
                         ("total_ms", Jsonx.num (1e3 *. secs));
                         ("calls", Jsonx.Int calls);
                       ] ))
                 phases) );
          ( "queue",
            Jsonx.Obj
              [
                ("depth", Jsonx.Int depth);
                ("bound", Jsonx.Int t.queue_bound);
                ("in_flight", Jsonx.Int inflight);
                ("draining", Jsonx.Bool t.is_draining);
              ] );
          ( "latency_ms",
            Jsonx.Obj
              [
                ("count", Jsonx.Int c.lat_count);
                ( "mean",
                  Jsonx.num
                    (if c.lat_count = 0 then 0.
                     else c.lat_sum_ms /. Float.of_int c.lat_count) );
                ( "p50",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.50) );
                ( "p90",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.90) );
                ( "p99",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.99) );
                ( "histogram_us_log2",
                  Jsonx.List
                    (Array.to_list
                       (Array.map (fun n -> Jsonx.Int n) c.lat_buckets)) );
              ] );
          ("uptime_s", Jsonx.num (Unix.gettimeofday () -. t.started_at));
        ])

(* ----------------------------- solving ------------------------------ *)

let solve_spec t ~cancel (params : Protocol.params) spec =
  let jobs = match params.Protocol.jobs with Some j -> Some j | None -> t.jobs in
  let p = params.Protocol.opt and strict = params.Protocol.strict in
  match spec with
  | Protocol.Cache s ->
      Cacti.Cache_model.solve_diag ?jobs ~cancel ~params:p ~strict s
      |> Result.map (fun (c, sum) -> (Protocol.cache_solution c, sum))
  | Protocol.Ram s ->
      Cacti.Ram_model.solve_diag ?jobs ~cancel ~params:p ~strict s
      |> Result.map (fun (r, sum) -> (Protocol.ram_solution r, sum))
  | Protocol.Mainmem chip ->
      Cacti.Mainmem.solve_diag ?jobs ~cancel ~params:p ~strict chip
      |> Result.map (fun (m, sum) -> (Protocol.mainmem_solution m, sum))

let classify_error ds =
  if List.exists (fun d -> d.Diag.reason = "no_solution") ds then `No_solution
  else `Invalid

let respond ~id ~t0 ?(cache_hits = 0) ?retry_after body =
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let ok, solution, diags =
    match body with
    | Ok solution -> (true, Some solution, [])
    | Error ds -> (false, None, ds)
  in
  ( wall_ms,
    Protocol.response_to_json
      {
        Protocol.r_id = id;
        r_ok = ok;
        r_solution = solution;
        r_diagnostics = diags;
        r_wall_ms = wall_ms;
        r_cache_hits = cache_hits;
        r_retry_after_ms = retry_after;
      } )

let handle_json ?admitted_at t j =
  let t0 = Unix.gettimeofday () in
  let admitted = Option.value admitted_at ~default:t0 in
  let wall_ms, response =
    match Protocol.parse_request j with
    | Error ds ->
        (* Envelope kinds stay meaningful even for undecodable requests:
           only lines with no recognizable kind count as malformed. *)
        (match Option.bind (Jsonx.member "kind" j) Jsonx.get_string with
        | Some "cache" -> count_kind t `Cache
        | Some "ram" -> count_kind t `Ram
        | Some "mainmem" -> count_kind t `Mainmem
        | Some "stats" -> count_kind t `Stats
        | Some _ | None -> count_kind t `Malformed);
        count_outcome t `Invalid;
        respond ~id:(Protocol.request_id j) ~t0 (Error ds)
    | Ok (Protocol.Stats { id }) ->
        count_kind t `Stats;
        count_outcome t `Ok;
        respond ~id ~t0 (Ok (stats_json t))
    | Ok (Protocol.Solve { id; spec; params } as req) ->
        count_kind t
          (match spec with
          | Protocol.Cache _ -> `Cache
          | Protocol.Ram _ -> `Ram
          | Protocol.Mainmem _ -> `Mainmem);
        (* Per-request cancellation: the deadline token (absolute, from
           admission time so queueing counts against the budget) chains to
           the service's drain token; a no-deadline request still cancels
           on drain. *)
        let cancel =
          match params.Protocol.deadline_ms with
          | Some d ->
              Cancel.create ~reason:"deadline"
                ~deadline_at:(admitted +. (d /. 1e3))
                ~parent:t.drain ()
          | None -> t.drain
        in
        (* Per-request fault containment: whatever escapes the model —
           including in strict mode, where the sweep re-raises on purpose —
           is this request's problem, never the server's.  Cancellation is
           not a fault: it maps to its own typed outcome. *)
        let result =
          try
            Chaos.fire "service.slow_solve";
            solve_spec t ~cancel params spec
            |> Result.map_error (fun ds -> (classify_error ds, ds))
          with
          | Cancel.Cancelled "drain" ->
              Error
                ( `Draining,
                  [
                    Diag.error ~component:"serve" ~reason:"draining"
                      "server draining: in-flight solve cancelled";
                  ] )
          | Cancel.Cancelled _ ->
              Error
                ( `Deadline_exceeded,
                  [
                    Diag.errorf ~component:"serve" ~reason:"deadline_exceeded"
                      "deadline of %g ms exceeded mid-solve (%.1f ms since \
                       admission)"
                      (Option.value params.Protocol.deadline_ms ~default:0.)
                      ((Unix.gettimeofday () -. admitted) *. 1e3);
                  ] )
          | exn ->
              Error
                ( `Internal_error,
                  [
                    Diag.errorf ~component:"serve" ~reason:"internal_error"
                      "uncontained exception answering %s request: %s"
                      (Protocol.kind_of_request req)
                      (Printexc.to_string exn);
                  ] )
        in
        (match result with
        | Ok (solution, summary) ->
            count_outcome t `Ok;
            respond ~id ~t0 ~cache_hits:summary.Diag.cache_hits (Ok solution)
        | Error (outcome, ds) ->
            count_outcome t outcome;
            respond ~id ~t0 (Error ds))
  in
  record_latency t wall_ms;
  response

let handle_line t line =
  count_line t;
  match Jsonx.parse line with
  | Ok j -> Jsonx.to_string (handle_json t j)
  | Error msg ->
      let t0 = Unix.gettimeofday () in
      count_kind t `Malformed;
      count_outcome t `Invalid;
      let _, response =
        respond ~id:Jsonx.Null ~t0
          (Error [ Diag.error ~component:"protocol" ~reason:"parse_error" msg ])
      in
      Jsonx.to_string response

(* -------------------------- admission queue ------------------------- *)

let refusal ~id ~reason ?retry_after msg =
  Jsonx.to_string
    (Protocol.response_to_json
       {
         Protocol.r_id = id;
         r_ok = false;
         r_solution = None;
         r_diagnostics = [ Diag.error ~component:"serve" ~reason msg ];
         r_wall_ms = 0.;
         r_cache_hits = 0;
         r_retry_after_ms = retry_after;
       })

(* Admission-time deadline extraction: the raw ["params"]["deadline_ms"]
   number, without the full request decode (that happens once, in the
   worker).  An invalid value admits with no deadline and is then
   rejected by the decode's validation. *)
let deadline_of_json j =
  match
    Option.bind (Jsonx.member "params" j) (fun p ->
        Option.bind (Jsonx.member "deadline_ms" p) Jsonx.get_float)
  with
  | Some d when Float.is_finite d && d > 0. -> Some d
  | _ -> None

let admit t ~reply line =
  count_line t;
  match Jsonx.parse line with
  | Error msg ->
      count_kind t `Malformed;
      count_outcome t `Invalid;
      let _, response =
        respond ~id:Jsonx.Null ~t0:(Unix.gettimeofday ())
          (Error [ Diag.error ~component:"protocol" ~reason:"parse_error" msg ])
      in
      reply (Jsonx.to_string response)
  | Ok j -> (
      let id = Protocol.request_id j in
      if t.is_draining then begin
        count_outcome t `Draining;
        reply
          (refusal ~id ~reason:"draining"
             "server draining: not accepting new requests")
      end
      else
        let now = Unix.gettimeofday () in
        let deadline =
          match deadline_of_json j with
          | Some d -> now +. (d /. 1e3)
          | None -> Float.infinity
        in
        let job =
          {
            j_json = j;
            j_id = id;
            j_reply = reply;
            j_admitted = now;
            j_deadline = deadline;
          }
        in
        let admitted =
          Mutex.protect t.qlock (fun () ->
              if
                t.stopping || t.is_draining
                || Queue.length t.queue >= t.queue_bound
              then false
              else begin
                Queue.push job t.queue;
                Condition.signal t.qcond;
                true
              end)
        in
        if not admitted then
          if t.is_draining || t.stopping then begin
            count_outcome t `Draining;
            reply
              (refusal ~id ~reason:"draining"
                 "server draining: not accepting new requests")
          end
          else begin
            count_outcome t `Overloaded;
            let depth = queue_depth t in
            reply
              (refusal ~id ~reason:"queue_full"
                 ~retry_after:(retry_after_ms t depth)
                 (Printf.sprintf
                    "admission queue full (%d of %d pending): retry later"
                    depth t.queue_bound))
          end)

let run_worker t =
  let rec loop () =
    let job =
      Mutex.protect t.qlock (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then begin
              let j = Queue.pop t.queue in
              (* Claim the job inside the queue lock so a drain's idle
                 check can never observe "queue empty, nothing in
                 flight" between our pop and the increment. *)
              Atomic.incr t.in_flight;
              Some j
            end
            else if t.stopping then None
            else begin
              Condition.wait t.qcond t.qlock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some job ->
        let now = Unix.gettimeofday () in
        (if now > job.j_deadline then begin
           (* Shed without solving: the deadline expired while queued. *)
           count_outcome t `Deadline_exceeded;
           let waited_ms = (now -. job.j_admitted) *. 1e3 in
           try
             job.j_reply
               (refusal ~id:job.j_id ~reason:"deadline_exceeded"
                  ~retry_after:(retry_after_ms t (queue_depth t))
                  (Printf.sprintf
                     "deadline exceeded after %.1f ms in queue (never solved)"
                     waited_ms))
           with _ -> ()
         end
         else
           (* [handle_json] is total, so anything escaping here is a
              transport-or-injected fault around it: count it, surface a
              warning, and answer the client best-effort.  The outcome
              was not yet counted (handle_json counts on its way out), so
              this branch owns the line's outcome. *)
           match
             Chaos.fire "service.worker";
             Jsonx.to_string (handle_json ~admitted_at:job.j_admitted t job.j_json)
           with
           | response -> ( try job.j_reply response with _ -> ())
           | exception exn ->
               count_worker_fault t;
               count_outcome t `Internal_error;
               t.log
                 (Diag.warningf ~component:"serve" ~reason:"worker_fault"
                    "exception escaped a queue worker: %s"
                    (Printexc.to_string exn));
               (try
                  job.j_reply
                    (refusal ~id:job.j_id ~reason:"internal_error"
                       (Printf.sprintf "worker fault: %s"
                          (Printexc.to_string exn)))
                with _ -> ()));
        Atomic.decr t.in_flight;
        loop ()
  in
  loop ()

(* ------------------------------ drain ------------------------------- *)

let begin_drain t =
  Mutex.protect t.qlock (fun () -> t.is_draining <- true)

let cancel_inflight t = Cancel.cancel t.drain

let stop_workers t =
  Mutex.protect t.qlock (fun () ->
      t.is_draining <- true;
      t.stopping <- true;
      Condition.broadcast t.qcond)

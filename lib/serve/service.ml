open Cacti_util

(* Latency histogram: bucket i counts requests with wall time in
   [2^i, 2^(i+1)) microseconds; 28 buckets span 1 us .. ~2.2 min. *)
let n_buckets = 28

(* Completion-timestamp ring for the observed service rate (drives
   retry_after_ms); 128 samples is ~a second of warm traffic and months
   of idle — the window below also bounds it in time. *)
let comp_ring = 128

(* Only completions this recent count toward the service rate: an idle
   gap must not dilute the rate the next burst's refusals hint with. *)
let rate_window_s = 10.

type counters = {
  mutable c_lines : int;
      (** every non-empty input line, counted once at entry (transport
          invariant: [c_lines] = sum of the outcome counters) *)
  mutable c_cache : int;
  mutable c_ram : int;
  mutable c_mainmem : int;
  mutable c_stats : int;
  mutable c_malformed : int;  (** lines that never decoded to a request *)
  mutable c_worker_faults : int;
      (** exceptions that escaped a queue worker's job (also counted under
          [o_internal_error]) *)
  mutable o_ok : int;
  mutable o_invalid : int;  (** bad request / bad spec / bad params *)
  mutable o_no_solution : int;
  mutable o_internal_error : int;  (** contained exception *)
  mutable o_overloaded : int;
  mutable o_deadline_exceeded : int;  (** shed in queue or cancelled mid-solve *)
  mutable o_draining : int;  (** refused or cancelled by a drain *)
  mutable lat_sum_ms : float;
  mutable lat_count : int;
  lat_buckets : int array;
  completions : float array;  (** ring of completion wall-clock stamps *)
  mutable comp_next : int;
  mutable comp_count : int;
}

(* One admitted request, parsed exactly once at the transport edge. *)
type job = {
  j_json : Jsonx.t;
  j_id : Jsonx.t;
  j_route : string;  (** canonical routing key, reused as the response-cache key *)
  j_reply : string -> unit;
  j_admitted : float;
  j_deadline : float;  (** absolute; [infinity] when no deadline *)
}

(* A memoized wire answer: everything needed to rebuild the response
   without decoding the request or touching the solver.  [re_cache_hits]
   is the array-lookup count a fully warm solve of this kind reports, so
   a response-cache hit is indistinguishable from a bank-memo hit on the
   wire. *)
type resp_entry = {
  re_solution : Jsonx.t;
  re_rendered : string;
      (** [re_solution] rendered once at store time, so fast-path hits
          splice it into the wire line instead of re-walking a
          multi-kilobyte tree per request *)
  re_cache_hits : int;
  re_kind : [ `Cache | `Ram | `Mainmem ];
}

(* One worker shard: its own queue (own lock — admission and drain stop
   contending on a single mutex), its own Solve_cache instance, and its
   own response cache. *)
type shard_q = {
  sq_index : int;
  sq_queue : job Queue.t;
  sq_lock : Mutex.t;
  sq_cond : Condition.t;
  sq_cache : Cacti.Solve_cache.shard;
  sq_resp : (string, resp_entry) Lru.t option;  (** [None]: fast path off *)
}

type t = {
  jobs : int option;
  queue_bound : int;  (** per shard *)
  shards : shard_q array;
  ring : Hashring.t;
  mutable stopping : bool;  (** workers exit once their queue drains *)
  mutable is_draining : bool;  (** new admissions refused *)
  in_flight : int Atomic.t;  (** jobs dequeued, response not yet written *)
  drain : Cancel.t;  (** parent token of every solve; fired to cancel *)
  log : Diag.t -> unit;
  clock : Mutex.t;  (** guards [counters] *)
  counters : counters;
  started_at : float;
  mutable aux_stats : (string * (unit -> Jsonx.t)) list;
      (** extra stats sections (e.g. the pre-solver), guarded by [clock] *)
}

let create ?jobs ?(queue_bound = 64) ?(shards = 1) ?(resp_cache = 4096)
    ?(log = fun d -> prerr_endline (Diag.to_string d)) () =
  if queue_bound < 1 then
    invalid_arg "Service.create: queue_bound must be positive";
  if shards < 1 then invalid_arg "Service.create: shards must be positive";
  if resp_cache < 0 then
    invalid_arg "Service.create: resp_cache must be non-negative";
  let mk_shard i =
    {
      sq_index = i;
      sq_queue = Queue.create ();
      sq_lock = Mutex.create ();
      sq_cond = Condition.create ();
      (* One shard routes everything to the process-wide default tables,
         so --cache-file persistence and every pre-sharding caller see
         the historical singleton behaviour. *)
      sq_cache =
        (if shards = 1 then Cacti.Solve_cache.default_shard
         else Cacti.Solve_cache.create_shard ());
      sq_resp =
        (if resp_cache = 0 then None
         else begin
           let lru = Lru.create () in
           Lru.set_capacity lru ~what:"Service.resp_cache" (Some resp_cache);
           Some lru
         end);
    }
  in
  {
    jobs;
    queue_bound;
    shards = Array.init shards mk_shard;
    ring = Hashring.create shards;
    stopping = false;
    is_draining = false;
    in_flight = Atomic.make 0;
    drain = Cancel.create ~reason:"drain" ();
    log;
    clock = Mutex.create ();
    counters =
      {
        c_lines = 0;
        c_cache = 0;
        c_ram = 0;
        c_mainmem = 0;
        c_stats = 0;
        c_malformed = 0;
        c_worker_faults = 0;
        o_ok = 0;
        o_invalid = 0;
        o_no_solution = 0;
        o_internal_error = 0;
        o_overloaded = 0;
        o_deadline_exceeded = 0;
        o_draining = 0;
        lat_sum_ms = 0.;
        lat_count = 0;
        lat_buckets = Array.make n_buckets 0;
        completions = Array.make comp_ring 0.;
        comp_next = 0;
        comp_count = 0;
      };
    started_at = Unix.gettimeofday ();
    aux_stats = [];
  }

let n_shards t = Array.length t.shards
let shard_cache t i = t.shards.(i).sq_cache
let drain_token t = t.drain

let register_stats t name fn =
  Mutex.protect t.clock (fun () ->
      t.aux_stats <- t.aux_stats @ [ (name, fn) ])

(* ----------------------------- routing ------------------------------- *)

(* The routing key of a request: the canonical (sorted-key) JSON of
   everything that determines its solution — kind, spec, and params minus
   the per-call knobs ([deadline_ms], [jobs]) that cannot change the
   selected organization.  Computed from the raw parsed JSON so the fast
   path never decodes a request; two spellings of the same spec that
   differ in defaulted fields route independently (they deduplicate at
   the Solve_cache fingerprint inside a shard). *)
let routing_key j =
  let kind =
    Option.value
      (Option.bind (Jsonx.member "kind" j) Jsonx.get_string)
      ~default:""
  in
  let spec = Option.value (Jsonx.member "spec" j) ~default:(Jsonx.Obj []) in
  let params =
    match Jsonx.member "params" j with
    | Some (Jsonx.Obj kvs) ->
        Jsonx.Obj
          (List.filter
             (fun (k, _) -> k <> "deadline_ms" && k <> "jobs")
             kvs)
    | Some v -> v
    | None -> Jsonx.Obj []
  in
  Jsonx.to_canonical_string
    (Jsonx.Obj
       [ ("kind", Jsonx.String kind); ("params", params); ("spec", spec) ])

let route_of t j =
  let key = routing_key j in
  (key, t.shards.(Hashring.lookup t.ring key))

(* --------------------------- accounting ----------------------------- *)

let count_line t =
  Mutex.protect t.clock (fun () ->
      t.counters.c_lines <- t.counters.c_lines + 1)

let count_kind t kind =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match kind with
      | `Cache -> c.c_cache <- c.c_cache + 1
      | `Ram -> c.c_ram <- c.c_ram + 1
      | `Mainmem -> c.c_mainmem <- c.c_mainmem + 1
      | `Stats -> c.c_stats <- c.c_stats + 1
      | `Malformed -> c.c_malformed <- c.c_malformed + 1)

let count_outcome t outcome =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match outcome with
      | `Ok -> c.o_ok <- c.o_ok + 1
      | `Invalid -> c.o_invalid <- c.o_invalid + 1
      | `No_solution -> c.o_no_solution <- c.o_no_solution + 1
      | `Internal_error -> c.o_internal_error <- c.o_internal_error + 1
      | `Overloaded -> c.o_overloaded <- c.o_overloaded + 1
      | `Deadline_exceeded ->
          c.o_deadline_exceeded <- c.o_deadline_exceeded + 1
      | `Draining -> c.o_draining <- c.o_draining + 1)

let count_worker_fault t =
  Mutex.protect t.clock (fun () ->
      t.counters.c_worker_faults <- t.counters.c_worker_faults + 1)

let bucket_of_ms ms =
  let us = ms *. 1e3 in
  if us < 1. then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 us))

let record_latency t ms =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      c.lat_sum_ms <- c.lat_sum_ms +. ms;
      c.lat_count <- c.lat_count + 1;
      let b = bucket_of_ms ms in
      c.lat_buckets.(b) <- c.lat_buckets.(b) + 1;
      (* The same event is a completion for the service-rate estimate. *)
      c.completions.(c.comp_next) <- Unix.gettimeofday ();
      c.comp_next <- (c.comp_next + 1) mod comp_ring;
      c.comp_count <- c.comp_count + 1)

(* Percentile estimate from the histogram: the geometric middle of the
   bucket where the cumulative count crosses the quantile.  Good to a
   factor of sqrt(2) — plenty for a live dashboard; the benchmark computes
   exact percentiles from raw samples. *)
let percentile_ms buckets total q =
  if total = 0 then 0.
  else begin
    let target = Float.of_int total *. q in
    let cum = ref 0 and found = ref (n_buckets - 1) and looking = ref true in
    Array.iteri
      (fun i n ->
        if !looking then begin
          cum := !cum + n;
          if Float.of_int !cum >= target then begin
            found := i;
            looking := false
          end
        end)
      buckets;
    (* bucket i spans [2^i, 2^(i+1)) us; geometric mid = 2^(i+0.5) us *)
    Float.pow 2. (Float.of_int !found +. 0.5) /. 1e3
  end

let shard_depth sq = Mutex.protect sq.sq_lock (fun () -> Queue.length sq.sq_queue)

let queue_depth t =
  Array.fold_left (fun acc sq -> acc + shard_depth sq) 0 t.shards

let in_flight t = Atomic.get t.in_flight
let draining t = t.is_draining

let idle t =
  Array.for_all
    (fun sq -> Mutex.protect sq.sq_lock (fun () -> Queue.is_empty sq.sq_queue))
    t.shards
  && Atomic.get t.in_flight = 0

(* Completions per second over the recent window, from the timestamp
   ring.  [None] until two completions land inside the window. *)
let service_rate t =
  let now = Unix.gettimeofday () in
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      let n = min c.comp_count comp_ring in
      let cutoff = now -. rate_window_s in
      (* Walk newest to oldest; stop at the window edge. *)
      let in_window = ref 0 and oldest = ref now in
      (try
         for k = 1 to n do
           let stamp = c.completions.((c.comp_next - k + (2 * comp_ring)) mod comp_ring) in
           if stamp < cutoff then raise Exit;
           incr in_window;
           oldest := stamp
         done
       with Exit -> ());
      if !in_window < 2 then None
      else
        let span = Float.max (now -. !oldest) 1e-3 in
        Some (Float.of_int !in_window /. span))

(* When should a refused client retry?  Long enough for the work queued
   ahead of it to clear at the observed recent service rate; before any
   completion lands, fall back to the mean-latency heuristic (and before
   any latency is recorded, to a flat 50 ms). *)
let retry_after_ms t depth =
  match service_rate t with
  | Some rate -> Float.max 1. (Float.of_int (depth + 1) /. rate *. 1e3)
  | None ->
      let mean =
        Mutex.protect t.clock (fun () ->
            let c = t.counters in
            if c.lat_count = 0 then 50.
            else c.lat_sum_ms /. Float.of_int c.lat_count)
      in
      Float.max 1. (mean *. Float.of_int (depth + 1))

(* ------------------------------ stats -------------------------------- *)

let lru_section ?(extra = []) (s : Lru.stats) size cap =
  let lookups = s.Lru.hits + s.Lru.misses in
  let hit_rate =
    if lookups = 0 then 0.
    else Float.of_int s.Lru.hits /. Float.of_int lookups
  in
  Jsonx.Obj
    ([
       ("hits", Jsonx.Int s.Lru.hits);
       ("misses", Jsonx.Int s.Lru.misses);
       ("size", Jsonx.Int size);
       ( "capacity",
         match cap with None -> Jsonx.Null | Some n -> Jsonx.Int n );
       ("hit_rate", Jsonx.num hit_rate);
     ]
    @ extra)

let resp_stats sq =
  match sq.sq_resp with
  | None -> (Lru.{ hits = 0; misses = 0 }, 0, None)
  | Some lru -> (Lru.stats lru, Lru.size lru, Lru.capacity lru)

let stats_json t =
  let module SC = Cacti.Solve_cache in
  (* Aggregate the shard tables; the per-shard split follows below. *)
  let sum f = Array.fold_left (fun acc sq -> acc + f sq) 0 t.shards in
  let sum_cap f =
    (* Total capacity is meaningful only when every shard is bounded. *)
    Array.fold_left
      (fun acc sq ->
        match (acc, f sq) with
        | Some a, Some c -> Some (a + c)
        | _ -> None)
      (Some 0) t.shards
  in
  let sc_hits = sum (fun sq -> (SC.shard_stats sq.sq_cache).SC.hits) in
  let sc_misses = sum (fun sq -> (SC.shard_stats sq.sq_cache).SC.misses) in
  let sc_size = sum (fun sq -> SC.shard_size sq.sq_cache) in
  let sc_cap = sum_cap (fun sq -> SC.shard_capacity sq.sq_cache) in
  let mat_hits = sum (fun sq -> (SC.shard_mat_stats sq.sq_cache).SC.hits) in
  let mat_misses =
    sum (fun sq -> (SC.shard_mat_stats sq.sq_cache).SC.misses)
  in
  let mat_size = sum (fun sq -> SC.shard_mat_size sq.sq_cache) in
  let mat_cap = sum_cap (fun sq -> SC.shard_mat_capacity sq.sq_cache) in
  let inc_full =
    sum (fun sq -> (SC.shard_incremental_stats sq.sq_cache).SC.full_hits)
  in
  let inc_rows =
    sum (fun sq -> (SC.shard_incremental_stats sq.sq_cache).SC.rows_hits)
  in
  let inc_miss =
    sum (fun sq -> (SC.shard_incremental_stats sq.sq_cache).SC.misses)
  in
  let rc_hits = sum (fun sq -> let s, _, _ = resp_stats sq in s.Lru.hits) in
  let rc_misses =
    sum (fun sq -> let s, _, _ = resp_stats sq in s.Lru.misses)
  in
  let rc_size = sum (fun sq -> let _, n, _ = resp_stats sq in n) in
  let rc_cap =
    sum_cap (fun sq ->
        let _, _, c = resp_stats sq in
        c)
  in
  let shard_sections =
    Array.to_list
      (Array.map
         (fun sq ->
           let scs = SC.shard_stats sq.sq_cache in
           let rcs, rcn, rcc = resp_stats sq in
           Jsonx.Obj
             [
               ("shard", Jsonx.Int sq.sq_index);
               ("depth", Jsonx.Int (shard_depth sq));
               ( "solve_cache",
                 lru_section
                   { Lru.hits = scs.SC.hits; misses = scs.SC.misses }
                   (SC.shard_size sq.sq_cache)
                   (SC.shard_capacity sq.sq_cache) );
               ("response_cache", lru_section rcs rcn rcc);
             ])
         t.shards)
  in
  (* Per-phase wall clock since startup; populated when phase accounting
     is on (the server binary enables it at launch). *)
  let phases = Cacti_util.Profile.summary () in
  let depth = queue_depth t in
  let inflight = Atomic.get t.in_flight in
  let rate = service_rate t in
  let c = t.counters in
  let aux = Mutex.protect t.clock (fun () -> t.aux_stats) in
  let aux_sections = List.map (fun (name, fn) -> (name, fn ())) aux in
  Mutex.protect t.clock (fun () ->
      Jsonx.Obj
        ([
           ( "requests",
             Jsonx.Obj
               [
                 ("lines", Jsonx.Int c.c_lines);
                 ("cache", Jsonx.Int c.c_cache);
                 ("ram", Jsonx.Int c.c_ram);
                 ("mainmem", Jsonx.Int c.c_mainmem);
                 ("stats", Jsonx.Int c.c_stats);
                 ("malformed", Jsonx.Int c.c_malformed);
               ] );
           ( "outcomes",
             Jsonx.Obj
               [
                 ("ok", Jsonx.Int c.o_ok);
                 ("invalid", Jsonx.Int c.o_invalid);
                 ("no_solution", Jsonx.Int c.o_no_solution);
                 ("internal_error", Jsonx.Int c.o_internal_error);
                 ("overloaded", Jsonx.Int c.o_overloaded);
                 ("deadline_exceeded", Jsonx.Int c.o_deadline_exceeded);
                 ("draining", Jsonx.Int c.o_draining);
               ] );
           ( "faults",
             Jsonx.Obj [ ("worker", Jsonx.Int c.c_worker_faults) ] );
           ( "solve_cache",
             lru_section
               { Lru.hits = sc_hits; misses = sc_misses }
               sc_size sc_cap );
           ( "response_cache",
             lru_section
               { Lru.hits = rc_hits; misses = rc_misses }
               rc_size rc_cap );
           ( "mat_memo",
             Jsonx.Obj
               [
                 ("hits", Jsonx.Int mat_hits);
                 ("misses", Jsonx.Int mat_misses);
                 ("size", Jsonx.Int mat_size);
                 ( "capacity",
                   match mat_cap with
                   | None -> Jsonx.Null
                   | Some n -> Jsonx.Int n );
               ] );
           ( "incremental",
             Jsonx.Obj
               [
                 ("full_hits", Jsonx.Int inc_full);
                 ("rows_hits", Jsonx.Int inc_rows);
                 ("misses", Jsonx.Int inc_miss);
               ] );
           ("shards", Jsonx.List shard_sections);
           ( "phases",
             Jsonx.Obj
               (List.map
                  (fun (phase, secs, calls) ->
                    ( phase,
                      Jsonx.Obj
                        [
                          ("total_ms", Jsonx.num (1e3 *. secs));
                          ("calls", Jsonx.Int calls);
                        ] ))
                  phases) );
           ( "queue",
             Jsonx.Obj
               [
                 ("depth", Jsonx.Int depth);
                 ("bound", Jsonx.Int t.queue_bound);
                 ("shards", Jsonx.Int (Array.length t.shards));
                 ("in_flight", Jsonx.Int inflight);
                 ("draining", Jsonx.Bool t.is_draining);
                 ( "service_rate_rps",
                   match rate with None -> Jsonx.Null | Some r -> Jsonx.num r
                 );
               ] );
           ( "latency_ms",
             Jsonx.Obj
               [
                 ("count", Jsonx.Int c.lat_count);
                 ( "mean",
                   Jsonx.num
                     (if c.lat_count = 0 then 0.
                      else c.lat_sum_ms /. Float.of_int c.lat_count) );
                 ( "p50",
                   Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.50) );
                 ( "p90",
                   Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.90) );
                 ( "p99",
                   Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.99) );
                 ( "histogram_us_log2",
                   Jsonx.List
                     (Array.to_list
                        (Array.map (fun n -> Jsonx.Int n) c.lat_buckets)) );
               ] );
           ("uptime_s", Jsonx.num (Unix.gettimeofday () -. t.started_at));
         ]
        @ aux_sections))

(* ----------------------------- solving ------------------------------ *)

let solve_spec t ~cancel (params : Protocol.params) spec =
  let jobs = match params.Protocol.jobs with Some j -> Some j | None -> t.jobs in
  let p = params.Protocol.opt and strict = params.Protocol.strict in
  match spec with
  | Protocol.Cache s ->
      Cacti.Cache_model.solve_diag ?jobs ~cancel ~params:p ~strict s
      |> Result.map (fun (c, sum) -> (Protocol.cache_solution c, sum))
  | Protocol.Ram s ->
      Cacti.Ram_model.solve_diag ?jobs ~cancel ~params:p ~strict s
      |> Result.map (fun (r, sum) -> (Protocol.ram_solution r, sum))
  | Protocol.Mainmem chip ->
      Cacti.Mainmem.solve_diag ?jobs ~cancel ~params:p ~strict chip
      |> Result.map (fun (m, sum) -> (Protocol.mainmem_solution m, sum))

let classify_error ds =
  if List.exists (fun d -> d.Diag.reason = "no_solution") ds then `No_solution
  else `Invalid

let respond ~id ~t0 ?(cache_hits = 0) ?retry_after body =
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let ok, solution, diags =
    match body with
    | Ok solution -> (true, Some solution, [])
    | Error ds -> (false, None, ds)
  in
  ( wall_ms,
    Protocol.response_to_json
      {
        Protocol.r_id = id;
        r_ok = ok;
        r_solution = solution;
        r_diagnostics = diags;
        r_wall_ms = wall_ms;
        r_cache_hits = cache_hits;
        r_retry_after_ms = retry_after;
      } )

let kind_tag = function
  | Protocol.Cache _ -> `Cache
  | Protocol.Ram _ -> `Ram
  | Protocol.Mainmem _ -> `Mainmem

(* The array-lookup count a fully warm solve of this kind reports: a
   cache solves its data and tag arrays, the others one array.  Stored
   with the response-cache entry so a fast-path hit reports the same
   [timing.cache_hits] a bank-memo hit would. *)
let warm_hits_of_kind = function `Cache -> 2 | `Ram -> 1 | `Mainmem -> 1

let store_response sq route ~kind solution =
  match sq.sq_resp with
  | None -> ()
  | Some resp ->
      ignore
        (Lru.publish resp route
           {
             re_solution = solution;
             re_rendered = Jsonx.to_string solution;
             re_cache_hits = warm_hits_of_kind kind;
             re_kind = kind;
           })

(* Raw-JSON deadline extraction (also used at admission): the
   ["params"]["deadline_ms"] number without the full request decode.  An
   invalid value admits with no deadline and is then rejected by the
   decode's validation. *)
let deadline_of_json j =
  match
    Option.bind (Jsonx.member "params" j) (fun p ->
        Option.bind (Jsonx.member "deadline_ms" p) Jsonx.get_float)
  with
  | Some d when Float.is_finite d && d > 0. -> Some d
  | _ -> None

(* Response-cache fast path: answer a previously solved request from its
   memoized wire answer, skipping the decode, the validation and the
   solver entirely.  The slow path's failure semantics are mirrored so
   the fast path is observationally identical under chaos and deadlines:
   the [service.slow_solve] injection point still fires (a delay can
   still push the request past its deadline, an injected exception is
   still contained), a fired drain token still answers
   [serve/draining]. *)
let fast_eligible j =
  match Option.bind (Jsonx.member "kind" j) Jsonx.get_string with
  | Some ("cache" | "ram" | "mainmem") -> true
  | _ -> false

(* The failure mirroring both fast-path renderers share. *)
let fast_result t ~admitted j e =
  try
    Chaos.fire "service.slow_solve";
    if Cancel.cancelled t.drain then
      Error
        ( `Draining,
          [
            Diag.error ~component:"serve" ~reason:"draining"
              "server draining: in-flight solve cancelled";
          ] )
    else
      match deadline_of_json j with
      | Some d when Unix.gettimeofday () > admitted +. (d /. 1e3) ->
          Error
            ( `Deadline_exceeded,
              [
                Diag.errorf ~component:"serve" ~reason:"deadline_exceeded"
                  "deadline of %g ms exceeded mid-solve (%.1f ms since \
                   admission)"
                  d
                  ((Unix.gettimeofday () -. admitted) *. 1e3);
              ] )
      | _ -> Ok e
  with exn ->
    Error
      ( `Internal_error,
        [
          Diag.errorf ~component:"serve" ~reason:"internal_error"
            "uncontained exception answering memoized request: %s"
            (Printexc.to_string exn);
        ] )

(* [counted:false] is the admission-time probe: a miss there is followed
   by the owning worker's counted lookup for the same request, so only
   hits may touch the hit/miss counters (the uncounted [mem]-then-[find]
   race is benign — an eviction in the window just counts one extra
   miss). *)
let fast_lookup ~counted sq j route =
  match sq.sq_resp with
  | None -> None
  | Some _ when not (fast_eligible j) -> None
  | Some resp ->
      if counted then Lru.find resp route
      else if Lru.mem resp route then Lru.find resp route
      else None

let try_fast_path t ~route sq ~admitted j t0 =
  match fast_lookup ~counted:true sq j route with
  | None -> None
  | Some e ->
      count_kind t e.re_kind;
      let id = Protocol.request_id j in
      Some
        (match fast_result t ~admitted j e with
        | Ok e ->
            count_outcome t `Ok;
            respond ~id ~t0 ~cache_hits:e.re_cache_hits (Ok e.re_solution)
        | Error (outcome, ds) ->
            count_outcome t outcome;
            respond ~id ~t0 (Error ds))

(* Admission-time warm answer, already rendered: the wire line is
   composed by splicing the solution text stored with the entry — field
   order and number formatting match [Protocol.response_to_json] +
   [Jsonx.to_string] byte-for-byte, so the spliced line is exactly what
   the tree path would print (wall_ms aside, which is genuinely
   per-request). *)
let try_fast_line t ~route sq ~admitted j t0 =
  match fast_lookup ~counted:false sq j route with
  | None -> None
  | Some e -> (
      count_kind t e.re_kind;
      let id = Protocol.request_id j in
      match fast_result t ~admitted j e with
      | Ok e ->
          count_outcome t `Ok;
          let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
          record_latency t wall_ms;
          Some
            (Printf.sprintf
               {|{"id":%s,"ok":true,"solution":%s,"timing":{"wall_ms":%s,"cache_hits":%d}}|}
               (Jsonx.to_string id) e.re_rendered
               (Jsonx.to_string (Jsonx.num wall_ms))
               e.re_cache_hits)
      | Error (outcome, ds) ->
          count_outcome t outcome;
          let wall_ms, response = respond ~id ~t0 (Error ds) in
          record_latency t wall_ms;
          Some (Jsonx.to_string response))

let handle_routed ?admitted_at t (route, sq) j =
  let t0 = Unix.gettimeofday () in
  let admitted = Option.value admitted_at ~default:t0 in
  let wall_ms, response =
    match try_fast_path t ~route sq ~admitted j t0 with
    | Some r -> r
    | None -> (
        match Protocol.parse_request j with
        | Error ds ->
            (* Envelope kinds stay meaningful even for undecodable requests:
               only lines with no recognizable kind count as malformed. *)
            (match Option.bind (Jsonx.member "kind" j) Jsonx.get_string with
            | Some "cache" -> count_kind t `Cache
            | Some "ram" -> count_kind t `Ram
            | Some "mainmem" -> count_kind t `Mainmem
            | Some "stats" -> count_kind t `Stats
            | Some _ | None -> count_kind t `Malformed);
            count_outcome t `Invalid;
            respond ~id:(Protocol.request_id j) ~t0 (Error ds)
        | Ok (Protocol.Stats { id }) ->
            count_kind t `Stats;
            count_outcome t `Ok;
            respond ~id ~t0 (Ok (stats_json t))
        | Ok (Protocol.Solve { id; spec; params } as req) ->
            count_kind t (kind_tag spec);
            (* Per-request cancellation: the deadline token (absolute, from
               admission time so queueing counts against the budget) chains
               to the service's drain token; a no-deadline request still
               cancels on drain. *)
            let cancel =
              match params.Protocol.deadline_ms with
              | Some d ->
                  Cancel.create ~reason:"deadline"
                    ~deadline_at:(admitted +. (d /. 1e3))
                    ~parent:t.drain ()
              | None -> t.drain
            in
            (* Per-request fault containment: whatever escapes the model —
               including in strict mode, where the sweep re-raises on
               purpose — is this request's problem, never the server's.
               Cancellation is not a fault: it maps to its own typed
               outcome. *)
            let result =
              try
                Chaos.fire "service.slow_solve";
                solve_spec t ~cancel params spec
                |> Result.map_error (fun ds -> (classify_error ds, ds))
              with
              | Cancel.Cancelled "drain" ->
                  Error
                    ( `Draining,
                      [
                        Diag.error ~component:"serve" ~reason:"draining"
                          "server draining: in-flight solve cancelled";
                      ] )
              | Cancel.Cancelled _ ->
                  Error
                    ( `Deadline_exceeded,
                      [
                        Diag.errorf ~component:"serve"
                          ~reason:"deadline_exceeded"
                          "deadline of %g ms exceeded mid-solve (%.1f ms \
                           since admission)"
                          (Option.value params.Protocol.deadline_ms
                             ~default:0.)
                          ((Unix.gettimeofday () -. admitted) *. 1e3);
                      ] )
              | exn ->
                  Error
                    ( `Internal_error,
                      [
                        Diag.errorf ~component:"serve"
                          ~reason:"internal_error"
                          "uncontained exception answering %s request: %s"
                          (Protocol.kind_of_request req)
                          (Printexc.to_string exn);
                      ] )
            in
            (match result with
            | Ok (solution, summary) ->
                count_outcome t `Ok;
                store_response sq route ~kind:(kind_tag spec) solution;
                respond ~id ~t0 ~cache_hits:summary.Diag.cache_hits
                  (Ok solution)
            | Error (outcome, ds) ->
                count_outcome t outcome;
                respond ~id ~t0 (Error ds)))
  in
  record_latency t wall_ms;
  response

let handle_json ?admitted_at t j = handle_routed ?admitted_at t (route_of t j) j

let handle_line t line =
  count_line t;
  match Jsonx.parse line with
  | Ok j ->
      (* The batch transport routes too: requests land on the owning
         shard's tables, so a batch warm-up and the socket/HTTP paths
         share one warm set. *)
      let ((_, sq) as route) = route_of t j in
      Cacti.Solve_cache.with_shard sq.sq_cache (fun () ->
          Jsonx.to_string (handle_routed t route j))
  | Error msg ->
      let t0 = Unix.gettimeofday () in
      count_kind t `Malformed;
      count_outcome t `Invalid;
      let _, response =
        respond ~id:Jsonx.Null ~t0
          (Error [ Diag.error ~component:"protocol" ~reason:"parse_error" msg ])
      in
      Jsonx.to_string response

(* --------------------------- pre-solving ----------------------------- *)

(* Solve one grid point exactly as an admitted request would be solved —
   same routing key, same shard, same memo tables — but outside the
   request counters: pre-solve traffic is not client traffic and must not
   disturb the [lines = outcomes] partition or the latency histogram.
   Failures are contained and reported; [Cancel.Cancelled] propagates so
   a drain aborts the walk. *)
let presolve_point ?cancel t j =
  let route, sq = route_of t j in
  let already_warm =
    match sq.sq_resp with
    | Some resp -> Lru.mem resp route
    | None -> false
  in
  if already_warm then `Warm
  else
    match Protocol.parse_request j with
    | Ok (Protocol.Solve { spec; params; _ }) -> (
        let cancel = Option.value cancel ~default:t.drain in
        match
          Cacti.Solve_cache.with_shard sq.sq_cache (fun () ->
              solve_spec t ~cancel params spec)
        with
        | Ok (solution, _summary) ->
            store_response sq route ~kind:(kind_tag spec) solution;
            `Solved
        | Error ds -> `Failed (Diag.render ds)
        | exception (Cancel.Cancelled _ as e) -> raise e
        | exception exn -> `Failed (Printexc.to_string exn))
    | Ok (Protocol.Stats _) -> `Failed "stats request in pre-solve grid"
    | Error ds -> `Failed (Diag.render ds)

(* -------------------------- admission queue ------------------------- *)

let refusal ~id ~reason ?retry_after msg =
  Jsonx.to_string
    (Protocol.response_to_json
       {
         Protocol.r_id = id;
         r_ok = false;
         r_solution = None;
         r_diagnostics = [ Diag.error ~component:"serve" ~reason msg ];
         r_wall_ms = 0.;
         r_cache_hits = 0;
         r_retry_after_ms = retry_after;
       })

let admit t ~reply line =
  count_line t;
  match Jsonx.parse line with
  | Error msg ->
      count_kind t `Malformed;
      count_outcome t `Invalid;
      let _, response =
        respond ~id:Jsonx.Null ~t0:(Unix.gettimeofday ())
          (Error [ Diag.error ~component:"protocol" ~reason:"parse_error" msg ])
      in
      reply (Jsonx.to_string response)
  | Ok j -> (
      let id = Protocol.request_id j in
      if t.is_draining then begin
        count_outcome t `Draining;
        reply
          (refusal ~id ~reason:"draining"
             "server draining: not accepting new requests")
      end
      else
        let route, sq = route_of t j in
        let now = Unix.gettimeofday () in
        (* Warm fast path at admission: a response-cache hit is answered
           in-line on the transport thread, skipping the queue and the
           worker handoff entirely — warm requests neither occupy queue
           slots nor pay two context switches.  Misses fall through to
           the queue (and the worker re-probes, counted, in case a
           duplicate in front of it warmed the entry meanwhile). *)
        match try_fast_line t ~route sq ~admitted:now j now with
        | Some line -> reply line
        | None ->
        let deadline =
          match deadline_of_json j with
          | Some d -> now +. (d /. 1e3)
          | None -> Float.infinity
        in
        let job =
          {
            j_json = j;
            j_id = id;
            j_route = route;
            j_reply = reply;
            j_admitted = now;
            j_deadline = deadline;
          }
        in
        let admitted =
          Mutex.protect sq.sq_lock (fun () ->
              if
                t.stopping || t.is_draining
                || Queue.length sq.sq_queue >= t.queue_bound
              then false
              else begin
                Queue.push job sq.sq_queue;
                Condition.signal sq.sq_cond;
                true
              end)
        in
        if not admitted then
          if t.is_draining || t.stopping then begin
            count_outcome t `Draining;
            reply
              (refusal ~id ~reason:"draining"
                 "server draining: not accepting new requests")
          end
          else begin
            count_outcome t `Overloaded;
            let depth = shard_depth sq in
            reply
              (refusal ~id ~reason:"queue_full"
                 ~retry_after:(retry_after_ms t depth)
                 (Printf.sprintf
                    "admission queue full (%d of %d pending on shard %d): \
                     retry later"
                    depth t.queue_bound sq.sq_index))
          end)

let worker_loop t sq =
  let rec loop () =
    let job =
      Mutex.protect sq.sq_lock (fun () ->
          let rec wait () =
            if not (Queue.is_empty sq.sq_queue) then begin
              let j = Queue.pop sq.sq_queue in
              (* Claim the job inside the queue lock so a drain's idle
                 check can never observe "queue empty, nothing in
                 flight" between our pop and the increment. *)
              Atomic.incr t.in_flight;
              Some j
            end
            else if t.stopping then None
            else begin
              Condition.wait sq.sq_cond sq.sq_lock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some job ->
        let now = Unix.gettimeofday () in
        (if now > job.j_deadline then begin
           (* Shed without solving: the deadline expired while queued. *)
           count_outcome t `Deadline_exceeded;
           let waited_ms = (now -. job.j_admitted) *. 1e3 in
           try
             job.j_reply
               (refusal ~id:job.j_id ~reason:"deadline_exceeded"
                  ~retry_after:(retry_after_ms t (shard_depth sq))
                  (Printf.sprintf
                     "deadline exceeded after %.1f ms in queue (never solved)"
                     waited_ms))
           with _ -> ()
         end
         else
           (* [handle_json] is total, so anything escaping here is a
              transport-or-injected fault around it: count it, surface a
              warning, and answer the client best-effort.  The outcome
              was not yet counted (handle_json counts on its way out), so
              this branch owns the line's outcome. *)
           match
             Chaos.fire "service.worker";
             Jsonx.to_string
               (handle_routed ~admitted_at:job.j_admitted t
                  (job.j_route, sq) job.j_json)
           with
           | response -> ( try job.j_reply response with _ -> ())
           | exception exn ->
               count_worker_fault t;
               count_outcome t `Internal_error;
               t.log
                 (Diag.warningf ~component:"serve" ~reason:"worker_fault"
                    "exception escaped a queue worker: %s"
                    (Printexc.to_string exn));
               (try
                  job.j_reply
                    (refusal ~id:job.j_id ~reason:"internal_error"
                       (Printf.sprintf "worker fault: %s"
                          (Printexc.to_string exn)))
                with _ -> ()));
        Atomic.decr t.in_flight;
        loop ()
  in
  loop ()

let run_shard_worker t shard =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Service.run_shard_worker: no such shard";
  let sq = t.shards.(shard) in
  (* Bind the shard's Solve_cache for the whole drain loop: every solve
     this worker runs hits the shard's own tables. *)
  Cacti.Solve_cache.with_shard sq.sq_cache (fun () -> worker_loop t sq)

let run_worker t = run_shard_worker t 0

(* ------------------------------ drain ------------------------------- *)

let begin_drain t = t.is_draining <- true

let cancel_inflight t = Cancel.cancel t.drain

let stop_workers t =
  t.is_draining <- true;
  Array.iter
    (fun sq ->
      Mutex.protect sq.sq_lock (fun () ->
          t.stopping <- true;
          Condition.broadcast sq.sq_cond))
    t.shards

open Cacti_util

(* Latency histogram: bucket i counts requests with wall time in
   [2^i, 2^(i+1)) microseconds; 28 buckets span 1 us .. ~2.2 min. *)
let n_buckets = 28

type counters = {
  mutable c_cache : int;
  mutable c_ram : int;
  mutable c_mainmem : int;
  mutable c_stats : int;
  mutable c_malformed : int;  (** lines that never decoded to a request *)
  mutable o_ok : int;
  mutable o_invalid : int;  (** bad request / bad spec / bad params *)
  mutable o_no_solution : int;
  mutable o_internal_error : int;  (** contained exception *)
  mutable o_overloaded : int;
  mutable lat_sum_ms : float;
  mutable lat_count : int;
  lat_buckets : int array;
}

type t = {
  jobs : int option;
  queue_bound : int;
  queue : (unit -> unit) Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool;
  clock : Mutex.t;  (** guards [counters] *)
  counters : counters;
  started_at : float;
}

let create ?jobs ?(queue_bound = 64) () =
  if queue_bound < 1 then
    invalid_arg "Service.create: queue_bound must be positive";
  {
    jobs;
    queue_bound;
    queue = Queue.create ();
    qlock = Mutex.create ();
    qcond = Condition.create ();
    stopping = false;
    clock = Mutex.create ();
    counters =
      {
        c_cache = 0;
        c_ram = 0;
        c_mainmem = 0;
        c_stats = 0;
        c_malformed = 0;
        o_ok = 0;
        o_invalid = 0;
        o_no_solution = 0;
        o_internal_error = 0;
        o_overloaded = 0;
        lat_sum_ms = 0.;
        lat_count = 0;
        lat_buckets = Array.make n_buckets 0;
      };
    started_at = Unix.gettimeofday ();
  }

(* --------------------------- accounting ----------------------------- *)

let count_kind t kind =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match kind with
      | `Cache -> c.c_cache <- c.c_cache + 1
      | `Ram -> c.c_ram <- c.c_ram + 1
      | `Mainmem -> c.c_mainmem <- c.c_mainmem + 1
      | `Stats -> c.c_stats <- c.c_stats + 1
      | `Malformed -> c.c_malformed <- c.c_malformed + 1)

let count_outcome t outcome =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      match outcome with
      | `Ok -> c.o_ok <- c.o_ok + 1
      | `Invalid -> c.o_invalid <- c.o_invalid + 1
      | `No_solution -> c.o_no_solution <- c.o_no_solution + 1
      | `Internal_error -> c.o_internal_error <- c.o_internal_error + 1
      | `Overloaded -> c.o_overloaded <- c.o_overloaded + 1)

let bucket_of_ms ms =
  let us = ms *. 1e3 in
  if us < 1. then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 us))

let record_latency t ms =
  Mutex.protect t.clock (fun () ->
      let c = t.counters in
      c.lat_sum_ms <- c.lat_sum_ms +. ms;
      c.lat_count <- c.lat_count + 1;
      let b = bucket_of_ms ms in
      c.lat_buckets.(b) <- c.lat_buckets.(b) + 1)

(* Percentile estimate from the histogram: the geometric middle of the
   bucket where the cumulative count crosses the quantile.  Good to a
   factor of sqrt(2) — plenty for a live dashboard; the benchmark computes
   exact percentiles from raw samples. *)
let percentile_ms buckets total q =
  if total = 0 then 0.
  else begin
    let target = Float.of_int total *. q in
    let cum = ref 0 and found = ref (n_buckets - 1) and looking = ref true in
    Array.iteri
      (fun i n ->
        if !looking then begin
          cum := !cum + n;
          if Float.of_int !cum >= target then begin
            found := i;
            looking := false
          end
        end)
      buckets;
    (* bucket i spans [2^i, 2^(i+1)) us; geometric mid = 2^(i+0.5) us *)
    Float.pow 2. (Float.of_int !found +. 0.5) /. 1e3
  end

let queue_depth t = Mutex.protect t.qlock (fun () -> Queue.length t.queue)

let stats_json t =
  let sc = Cacti.Solve_cache.stats () in
  let size = Cacti.Solve_cache.size () in
  let cap = Cacti.Solve_cache.capacity () in
  let ms = Cacti.Solve_cache.mat_stats () in
  let msize = Cacti.Solve_cache.mat_size () in
  let mcap = Cacti.Solve_cache.mat_capacity () in
  let inc = Cacti.Solve_cache.incremental_stats () in
  (* Per-phase wall clock since startup; populated when phase accounting
     is on (the server binary enables it at launch). *)
  let phases = Cacti_util.Profile.summary () in
  let depth = queue_depth t in
  let c = t.counters in
  Mutex.protect t.clock (fun () ->
      let lookups = sc.Cacti.Solve_cache.hits + sc.Cacti.Solve_cache.misses in
      let hit_rate =
        if lookups = 0 then 0.
        else Float.of_int sc.Cacti.Solve_cache.hits /. Float.of_int lookups
      in
      Jsonx.Obj
        [
          ( "requests",
            Jsonx.Obj
              [
                ("cache", Jsonx.Int c.c_cache);
                ("ram", Jsonx.Int c.c_ram);
                ("mainmem", Jsonx.Int c.c_mainmem);
                ("stats", Jsonx.Int c.c_stats);
                ("malformed", Jsonx.Int c.c_malformed);
              ] );
          ( "outcomes",
            Jsonx.Obj
              [
                ("ok", Jsonx.Int c.o_ok);
                ("invalid", Jsonx.Int c.o_invalid);
                ("no_solution", Jsonx.Int c.o_no_solution);
                ("internal_error", Jsonx.Int c.o_internal_error);
                ("overloaded", Jsonx.Int c.o_overloaded);
              ] );
          ( "solve_cache",
            Jsonx.Obj
              [
                ("hits", Jsonx.Int sc.Cacti.Solve_cache.hits);
                ("misses", Jsonx.Int sc.Cacti.Solve_cache.misses);
                ("size", Jsonx.Int size);
                ( "capacity",
                  match cap with None -> Jsonx.Null | Some n -> Jsonx.Int n );
                ("hit_rate", Jsonx.num hit_rate);
              ] );
          ( "mat_memo",
            Jsonx.Obj
              [
                ("hits", Jsonx.Int ms.Cacti.Solve_cache.hits);
                ("misses", Jsonx.Int ms.Cacti.Solve_cache.misses);
                ("size", Jsonx.Int msize);
                ( "capacity",
                  match mcap with None -> Jsonx.Null | Some n -> Jsonx.Int n
                );
              ] );
          ( "incremental",
            Jsonx.Obj
              [
                ("full_hits", Jsonx.Int inc.Cacti.Solve_cache.full_hits);
                ("rows_hits", Jsonx.Int inc.Cacti.Solve_cache.rows_hits);
                ("misses", Jsonx.Int inc.Cacti.Solve_cache.misses);
              ] );
          ( "phases",
            Jsonx.Obj
              (List.map
                 (fun (phase, secs, calls) ->
                   ( phase,
                     Jsonx.Obj
                       [
                         ("total_ms", Jsonx.num (1e3 *. secs));
                         ("calls", Jsonx.Int calls);
                       ] ))
                 phases) );
          ( "queue",
            Jsonx.Obj
              [
                ("depth", Jsonx.Int depth);
                ("bound", Jsonx.Int t.queue_bound);
              ] );
          ( "latency_ms",
            Jsonx.Obj
              [
                ("count", Jsonx.Int c.lat_count);
                ( "mean",
                  Jsonx.num
                    (if c.lat_count = 0 then 0.
                     else c.lat_sum_ms /. Float.of_int c.lat_count) );
                ( "p50",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.50) );
                ( "p90",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.90) );
                ( "p99",
                  Jsonx.num (percentile_ms c.lat_buckets c.lat_count 0.99) );
                ( "histogram_us_log2",
                  Jsonx.List
                    (Array.to_list
                       (Array.map (fun n -> Jsonx.Int n) c.lat_buckets)) );
              ] );
          ("uptime_s", Jsonx.num (Unix.gettimeofday () -. t.started_at));
        ])

(* ----------------------------- solving ------------------------------ *)

let solve_spec t (params : Protocol.params) spec =
  let jobs = match params.Protocol.jobs with Some j -> Some j | None -> t.jobs in
  let p = params.Protocol.opt and strict = params.Protocol.strict in
  match spec with
  | Protocol.Cache s ->
      Cacti.Cache_model.solve_diag ?jobs ~params:p ~strict s
      |> Result.map (fun (c, sum) -> (Protocol.cache_solution c, sum))
  | Protocol.Ram s ->
      Cacti.Ram_model.solve_diag ?jobs ~params:p ~strict s
      |> Result.map (fun (r, sum) -> (Protocol.ram_solution r, sum))
  | Protocol.Mainmem chip ->
      Cacti.Mainmem.solve_diag ?jobs ~params:p ~strict chip
      |> Result.map (fun (m, sum) -> (Protocol.mainmem_solution m, sum))

let classify_error ds =
  if List.exists (fun d -> d.Diag.reason = "no_solution") ds then `No_solution
  else `Invalid

let respond ~id ~t0 ?(cache_hits = 0) body =
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let ok, solution, diags =
    match body with
    | Ok solution -> (true, Some solution, [])
    | Error ds -> (false, None, ds)
  in
  ( wall_ms,
    Protocol.response_to_json
      {
        Protocol.r_id = id;
        r_ok = ok;
        r_solution = solution;
        r_diagnostics = diags;
        r_wall_ms = wall_ms;
        r_cache_hits = cache_hits;
      } )

let handle_json t j =
  let t0 = Unix.gettimeofday () in
  let wall_ms, response =
    match Protocol.parse_request j with
    | Error ds ->
        (* Envelope kinds stay meaningful even for undecodable requests:
           only lines with no recognizable kind count as malformed. *)
        (match Option.bind (Jsonx.member "kind" j) Jsonx.get_string with
        | Some "cache" -> count_kind t `Cache
        | Some "ram" -> count_kind t `Ram
        | Some "mainmem" -> count_kind t `Mainmem
        | Some "stats" -> count_kind t `Stats
        | Some _ | None -> count_kind t `Malformed);
        count_outcome t `Invalid;
        respond ~id:(Protocol.request_id j) ~t0 (Error ds)
    | Ok (Protocol.Stats { id }) ->
        count_kind t `Stats;
        count_outcome t `Ok;
        respond ~id ~t0 (Ok (stats_json t))
    | Ok (Protocol.Solve { id; spec; params } as req) ->
        count_kind t
          (match spec with
          | Protocol.Cache _ -> `Cache
          | Protocol.Ram _ -> `Ram
          | Protocol.Mainmem _ -> `Mainmem);
        (* Per-request fault containment: whatever escapes the model —
           including in strict mode, where the sweep re-raises on purpose —
           is this request's problem, never the server's. *)
        let result =
          try
            solve_spec t params spec
            |> Result.map_error (fun ds -> (classify_error ds, ds))
          with exn ->
            ( Error
                ( `Internal_error,
                  [
                    Diag.errorf ~component:"serve" ~reason:"internal_error"
                      "uncontained exception answering %s request: %s"
                      (Protocol.kind_of_request req)
                      (Printexc.to_string exn);
                  ] ) )
        in
        (match result with
        | Ok (solution, summary) ->
            count_outcome t `Ok;
            respond ~id ~t0 ~cache_hits:summary.Diag.cache_hits (Ok solution)
        | Error (outcome, ds) ->
            count_outcome t outcome;
            respond ~id ~t0 (Error ds))
  in
  record_latency t wall_ms;
  response

let handle_line t line =
  match Jsonx.parse line with
  | Ok j -> Jsonx.to_string (handle_json t j)
  | Error msg ->
      let t0 = Unix.gettimeofday () in
      count_kind t `Malformed;
      count_outcome t `Invalid;
      let _, response =
        respond ~id:Jsonx.Null ~t0
          (Error [ Diag.error ~component:"protocol" ~reason:"parse_error" msg ])
      in
      Jsonx.to_string response

(* -------------------------- admission queue ------------------------- *)

let submit t job =
  Mutex.protect t.qlock (fun () ->
      if t.stopping || Queue.length t.queue >= t.queue_bound then false
      else begin
        Queue.push job t.queue;
        Condition.signal t.qcond;
        true
      end)

let reject_overloaded t line =
  count_outcome t `Overloaded;
  let id =
    match Jsonx.parse line with
    | Ok j -> Protocol.request_id j
    | Error _ -> Jsonx.Null
  in
  Jsonx.to_string
    (Protocol.response_to_json
       {
         Protocol.r_id = id;
         r_ok = false;
         r_solution = None;
         r_diagnostics =
           [
             Diag.errorf ~component:"serve" ~reason:"queue_full"
               "admission queue full (%d pending): retry later" t.queue_bound;
           ];
         r_wall_ms = 0.;
         r_cache_hits = 0;
       })

let run_worker t =
  let rec loop () =
    let job =
      Mutex.protect t.qlock (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
            else if t.stopping then None
            else begin
              Condition.wait t.qcond t.qlock;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some job ->
        (try job () with _ -> ());
        loop ()
  in
  loop ()

let stop_workers t =
  Mutex.protect t.qlock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcond)

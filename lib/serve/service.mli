(** The solve service behind the [cacti_serve] transports: decodes one
    request, answers it, and accounts for it.

    {b Fault containment.}  [handle_line]/[handle_json] never raise:
    malformed JSON, an undecodable request, an invalid spec, an empty
    design space, and even a stray exception escaping the model all become
    [ok: false] responses with structured diagnostics, so one poisoned
    request can never take the server down.  An exception that escapes a
    queue worker {e around} the handler (transport failure, injected
    fault) is likewise contained: counted under [internal_error] and the
    [worker] fault counter, logged as a [serve/worker_fault] warning, and
    answered best-effort.

    {b Sharding.}  The service owns [shards] worker shards.  Each shard
    has its own admission queue, its own {!Cacti.Solve_cache} instance
    and its own response cache; a consistent-hash ring
    ({!Cacti_util.Hashring}) over the request's canonical routing key
    (kind + spec + params minus the per-call [deadline_ms]/[jobs] knobs)
    assigns every request to exactly one shard, so warm entries are
    partitioned — never duplicated — and per-shard LRU capacities add up.
    With one shard (the default) the solve tables are the process-wide
    {!Cacti.Solve_cache.default_shard}, which is bit-for-bit the
    pre-sharding behaviour.

    {b Response cache.}  Each shard memoizes the wire answer of every
    successful solve under its routing key.  A repeat request is answered
    from this cache without decoding the spec, validating it, or running
    the solver — the warm fast path — while remaining observationally
    identical to a bank-memo hit: same solution bytes, same
    [timing.cache_hits], same behaviour under deadlines, drain and the
    [service.slow_solve] chaos point.  [resp_cache:0] disables it (every
    request then runs the full decode + solve path).

    {b Admission queue.}  Bounded per-shard queues decouple transport
    threads (which accept requests) from solver workers (which answer
    them).  {!admit} parses each line once at the edge, routes it, and
    either enqueues it on its shard or refuses it immediately —
    [serve/queue_full] past the shard's bound (with a [retry_after_ms]
    hint derived from the observed service rate), [serve/draining] once a
    drain began.  The batch transport bypasses the queues but routes the
    same way, so batch warm-up fills the same shard tables.

    {b Deadlines.}  A request's [params.deadline_ms] starts at admission.
    A job still queued past its deadline is shed without solving
    ([serve/deadline_exceeded]); one already solving carries a
    {!Cacti_util.Cancel.t} token polled at the sweep's partition
    boundaries, so the solve aborts within milliseconds and answers
    [serve/deadline_exceeded].  Requests without a deadline are never
    cancelled (except by {!cancel_inflight}) and their solutions are
    bit-identical to an undeadlined server's.

    {b Counter partition.}  Every non-empty line is counted once at entry
    ([requests.lines]) and lands in exactly one outcome counter, so
    [lines = ok + invalid + no_solution + internal_error + overloaded +
    deadline_exceeded + draining] holds at every quiescent point — the
    chaos soak asserts it under fault injection.  Pre-solve traffic
    ({!presolve_point}) deliberately stays outside this partition.

    {b Observability.}  Every request is counted by kind and outcome, and
    its wall time lands in a log₂ latency histogram; a ["stats"] request
    (or {!stats_json}) exposes the counters, aggregate and per-shard
    solve/response-cache hit rates, queue depths, the observed service
    rate, and any registered auxiliary sections. *)

type t

val create :
  ?jobs:int ->
  ?queue_bound:int ->
  ?shards:int ->
  ?resp_cache:int ->
  ?log:(Cacti_util.Diag.t -> unit) ->
  unit ->
  t
(** [jobs]: worker domains per design-space sweep (the
    {!Cacti_util.Pool}), default {!Cacti_util.Pool.default_jobs}; a
    request's [params.jobs] overrides it.  [queue_bound]: admission-queue
    capacity {e per shard}, default 64.  [shards]: worker shards, default
    1 (which aliases the process-wide default Solve_cache tables; more
    shards get private instances).  [resp_cache]: response-cache entries
    per shard, default 4096; 0 disables the warm fast path.  [log]: sink
    for server-side warnings (worker faults); default prints to
    stderr. *)

val n_shards : t -> int

val shard_cache : t -> int -> Cacti.Solve_cache.shard
(** The solve-cache instance of shard [i] (for persistence and capacity
    partitioning). *)

val routing_key : Cacti_util.Jsonx.t -> string
(** The canonical routing key of a raw request (kind + spec + params
    minus [deadline_ms]/[jobs], sorted-key JSON): the ring key and the
    response-cache key.  Pure — exposed for tests and benchmarks. *)

val handle_json :
  ?admitted_at:float -> t -> Cacti_util.Jsonx.t -> Cacti_util.Jsonx.t
(** Answer one parsed request; total and exception-safe.  [admitted_at]
    (default now) anchors the request's deadline, so time spent queued
    counts against its budget.  Routes internally (fast path included)
    but does {e not} bind the shard's Solve_cache around the slow path —
    transports go through {!handle_line} or {!admit}, which do. *)

val handle_line : t -> string -> string
(** The full wire path: parse one JSONL line, route it, answer it on the
    owning shard's tables, print the response line (without the trailing
    newline). *)

val stats_json : t -> Cacti_util.Jsonx.t
(** The ["stats"] solution object. *)

val register_stats : t -> string -> (unit -> Cacti_util.Jsonx.t) -> unit
(** Append a named auxiliary section to every subsequent {!stats_json}
    (e.g. the pre-solver's progress).  The thunk runs outside the
    counter lock and must not raise. *)

val service_rate : t -> float option
(** Completions per second over the recent window (None until two
    completions land inside it) — what [retry_after_ms] hints derive
    from. *)

(** {1 Admission queue} *)

val admit : t -> reply:(string -> unit) -> string -> unit
(** Admit one request line from a transport thread: parse it once, route
    it, then enqueue it for its shard's workers or answer it immediately
    through [reply] — malformed lines, [serve/draining] refusals, and
    [serve/queue_full] refusals (with the shard's queue depth and a
    [retry_after_ms] hint) never touch the queue.  [reply] is retained
    until the job's response is written; it must tolerate being called
    from a worker thread. *)

val queue_depth : t -> int
(** Total queued jobs across all shards. *)

val in_flight : t -> int
(** Jobs dequeued by a worker whose response is not yet written. *)

val idle : t -> bool
(** No queued and no in-flight work (the drain's termination test). *)

val run_worker : t -> unit
(** [run_shard_worker t 0]: dequeue and run shard 0's jobs until
    {!stop_workers}; meant for a dedicated thread per worker.  Sheds
    queued jobs whose deadline already expired without solving them. *)

val run_shard_worker : t -> int -> unit
(** Like {!run_worker} for an explicit shard.  The worker thread binds
    the shard's Solve_cache for its whole drain loop.  Raises
    [Invalid_argument] on an out-of-range shard. *)

val stop_workers : t -> unit
(** Wake every worker and make it return once its queue drains;
    subsequent {!admit}s are refused. *)

(** {1 Pre-solving} *)

val presolve_point :
  ?cancel:Cacti_util.Cancel.t ->
  t ->
  Cacti_util.Jsonx.t ->
  [ `Solved | `Warm | `Failed of string ]
(** Solve one grid point exactly as an admitted request would be —
    same routing key, same shard, same memo tables, same response-cache
    entry — but outside the request counters and the latency histogram
    (pre-solve traffic is not client traffic).  [`Warm]: the point was
    already response-cached (probed without touching the hit-rate
    counters).  [cancel] (default: the drain token) aborts the solve;
    {!Cacti_util.Cancel.Cancelled} propagates to the caller. *)

(** {1 Graceful drain} *)

val begin_drain : t -> unit
(** Stop admitting: every subsequent {!admit} answers [serve/draining].
    Queued and in-flight work continues. *)

val draining : t -> bool

val drain_token : t -> Cacti_util.Cancel.t
(** The parent token of every solve — chain pre-solver (or other
    background) tokens to it so {!cancel_inflight} cancels them too. *)

val cancel_inflight : t -> unit
(** Fire the drain token every solve chains to: in-flight sweeps abort at
    their next poll point and answer [serve/draining].  Irreversible. *)

(** The solve service behind both [cacti_serve] transports: decodes one
    request, answers it, and accounts for it.

    {b Fault containment.}  [handle_line]/[handle_json] never raise:
    malformed JSON, an undecodable request, an invalid spec, an empty
    design space, and even a stray exception escaping the model all become
    [ok: false] responses with structured diagnostics, so one poisoned
    request can never take the server down.

    {b Admission queue.}  A bounded queue decouples transport threads
    (which accept requests) from solver workers (which answer them).
    {!submit} refuses work beyond the bound — the caller replies
    "overloaded" immediately instead of buffering unboundedly.  The batch
    transport bypasses the queue and calls {!handle_line} synchronously.

    {b Observability.}  Every request is counted by kind and outcome, and
    its wall time lands in a log₂ latency histogram; a ["stats"] request
    (or {!stats_json}) exposes the counters, the {!Cacti.Solve_cache}
    hit rate and the live queue depth. *)

type t

val create : ?jobs:int -> ?queue_bound:int -> unit -> t
(** [jobs]: worker domains per design-space sweep (the
    {!Cacti_util.Pool}), default {!Cacti_util.Pool.default_jobs}; a
    request's [params.jobs] overrides it.  [queue_bound]: admission-queue
    capacity, default 64. *)

val handle_json : t -> Cacti_util.Jsonx.t -> Cacti_util.Jsonx.t
(** Answer one parsed request; total and exception-safe. *)

val handle_line : t -> string -> string
(** The full wire path: parse one JSONL line, answer it, print the
    response line (without the trailing newline). *)

val stats_json : t -> Cacti_util.Jsonx.t
(** The ["stats"] solution object. *)

(** {1 Admission queue} *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job for the solver workers; [false] when the queue is at its
    bound (the caller must answer "overloaded") or the service is
    stopping. *)

val reject_overloaded : t -> string -> string
(** The [ok: false] [queue_full] response line for a request line that
    {!submit} refused; counts the request under the [overloaded]
    outcome. *)

val queue_depth : t -> int

val run_worker : t -> unit
(** Dequeue and run jobs until {!stop_workers}; meant for a dedicated
    thread per worker. *)

val stop_workers : t -> unit
(** Wake every {!run_worker} and make it return once the queue drains;
    subsequent {!submit}s are refused. *)

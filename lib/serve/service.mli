(** The solve service behind both [cacti_serve] transports: decodes one
    request, answers it, and accounts for it.

    {b Fault containment.}  [handle_line]/[handle_json] never raise:
    malformed JSON, an undecodable request, an invalid spec, an empty
    design space, and even a stray exception escaping the model all become
    [ok: false] responses with structured diagnostics, so one poisoned
    request can never take the server down.  An exception that escapes a
    queue worker {e around} the handler (transport failure, injected
    fault) is likewise contained: counted under [internal_error] and the
    [worker] fault counter, logged as a [serve/worker_fault] warning, and
    answered best-effort.

    {b Admission queue.}  A bounded queue decouples transport threads
    (which accept requests) from solver workers (which answer them).
    {!admit} parses each line once at the edge and either enqueues it or
    refuses it immediately — [serve/queue_full] past the bound (with a
    [retry_after_ms] hint), [serve/draining] once a drain began.  The
    batch transport bypasses the queue and calls {!handle_line}
    synchronously.

    {b Deadlines.}  A request's [params.deadline_ms] starts at admission.
    A job still queued past its deadline is shed without solving
    ([serve/deadline_exceeded]); one already solving carries a
    {!Cacti_util.Cancel.t} token polled at the sweep's partition
    boundaries, so the solve aborts within milliseconds and answers
    [serve/deadline_exceeded].  Requests without a deadline are never
    cancelled (except by {!cancel_inflight}) and their solutions are
    bit-identical to an undeadlined server's.

    {b Counter partition.}  Every non-empty line is counted once at entry
    ([requests.lines]) and lands in exactly one outcome counter, so
    [lines = ok + invalid + no_solution + internal_error + overloaded +
    deadline_exceeded + draining] holds at every quiescent point — the
    chaos soak asserts it under fault injection.

    {b Observability.}  Every request is counted by kind and outcome, and
    its wall time lands in a log₂ latency histogram; a ["stats"] request
    (or {!stats_json}) exposes the counters, the {!Cacti.Solve_cache}
    hit rate, the live queue depth and the in-flight count. *)

type t

val create :
  ?jobs:int ->
  ?queue_bound:int ->
  ?log:(Cacti_util.Diag.t -> unit) ->
  unit ->
  t
(** [jobs]: worker domains per design-space sweep (the
    {!Cacti_util.Pool}), default {!Cacti_util.Pool.default_jobs}; a
    request's [params.jobs] overrides it.  [queue_bound]: admission-queue
    capacity, default 64.  [log]: sink for server-side warnings (worker
    faults); default prints to stderr. *)

val handle_json : ?admitted_at:float -> t -> Cacti_util.Jsonx.t -> Cacti_util.Jsonx.t
(** Answer one parsed request; total and exception-safe.  [admitted_at]
    (default now) anchors the request's deadline, so time spent queued
    counts against its budget. *)

val handle_line : t -> string -> string
(** The full wire path: parse one JSONL line, answer it, print the
    response line (without the trailing newline). *)

val stats_json : t -> Cacti_util.Jsonx.t
(** The ["stats"] solution object. *)

(** {1 Admission queue} *)

val admit : t -> reply:(string -> unit) -> string -> unit
(** Admit one request line from a transport thread: parse it once, then
    enqueue it for the workers or answer it immediately through [reply] —
    malformed lines, [serve/draining] refusals, and [serve/queue_full]
    refusals (with queue depth and a [retry_after_ms] hint) never touch
    the queue.  [reply] is retained until the job's response is written;
    it must tolerate being called from a worker thread. *)

val queue_depth : t -> int

val in_flight : t -> int
(** Jobs dequeued by a worker whose response is not yet written. *)

val idle : t -> bool
(** No queued and no in-flight work (the drain's termination test). *)

val run_worker : t -> unit
(** Dequeue and run jobs until {!stop_workers}; meant for a dedicated
    thread per worker.  Sheds queued jobs whose deadline already expired
    without solving them. *)

val stop_workers : t -> unit
(** Wake every {!run_worker} and make it return once the queue drains;
    subsequent {!admit}s are refused. *)

(** {1 Graceful drain} *)

val begin_drain : t -> unit
(** Stop admitting: every subsequent {!admit} answers [serve/draining].
    Queued and in-flight work continues. *)

val draining : t -> bool

val cancel_inflight : t -> unit
(** Fire the drain token every solve chains to: in-flight sweeps abort at
    their next poll point and answer [serve/draining].  Irreversible. *)

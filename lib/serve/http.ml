(* Dependency-free HTTP/1.1 transport: see http.mli for the mapping. *)

open Cacti_util

(* ----------------------------- limits ------------------------------- *)

let max_line = 8192
let max_headers = 64
let max_body = 1 lsl 20

(* ----------------------------- parsing ------------------------------ *)

type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

(* "METHOD SP target SP HTTP/x.y" — exactly three tokens. *)
let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
      if String.length version >= 5 && String.sub version 0 5 = "HTTP/" then
        Ok (meth, target, version)
      else Error (Printf.sprintf "bad HTTP version %S" version)
  | _ -> Error (Printf.sprintf "malformed request line %S" line)

(* "Name: value" with optional whitespace around the value; the name is
   lowercased so lookups are case-insensitive as RFC 9110 requires. *)
let parse_header line =
  match String.index_opt line ':' with
  | None | Some 0 -> Error (Printf.sprintf "malformed header line %S" line)
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      Ok (name, value)

let header_value headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

(* Should the connection stay open after this exchange?  HTTP/1.1
   defaults to keep-alive unless "Connection: close"; anything older
   closes unless it asked to keep alive. *)
let keep_alive req =
  let conn =
    Option.map String.lowercase_ascii (header_value req.headers "connection")
  in
  if req.version = "HTTP/1.1" then conn <> Some "close"
  else conn = Some "keep-alive"

(* Read one request off the channel.  Returns [`Eof] on a cleanly closed
   connection (EOF before any byte of a request line), [`Bad msg] on a
   malformed request — after which the connection must be closed, since
   the framing is lost.  [oc] is needed mid-read: a client that sent
   "Expect: 100-continue" (curl does, for bodies past ~1 KiB) blocks
   until the interim response arrives, so it must be written before the
   body is read. *)
let read_request ic oc =
  let line () = strip_cr (input_line ic) in
  match
    (* Tolerate blank line(s) between pipelined requests (RFC 9112 2.2). *)
    let rec first () =
      let l = line () in
      if l = "" then first () else l
    in
    first ()
  with
  | exception End_of_file -> `Eof
  | request_line when String.length request_line > max_line ->
      `Bad "request line too long"
  | request_line -> (
      match parse_request_line request_line with
      | Error msg -> `Bad msg
      | Ok (meth, target, version) -> (
          let rec read_headers acc n =
            if n > max_headers then Error "too many headers"
            else
              match line () with
              | "" -> Ok (List.rev acc)
              | l when String.length l > max_line -> Error "header too long"
              | l -> (
                  match parse_header l with
                  | Ok kv -> read_headers (kv :: acc) (n + 1)
                  | Error msg -> Error msg)
              | exception End_of_file -> Error "eof inside headers"
          in
          match read_headers [] 0 with
          | Error msg -> `Bad msg
          | Ok headers -> (
              if header_value headers "transfer-encoding" <> None then
                `Bad "chunked transfer encoding not supported"
              else
                match header_value headers "content-length" with
                | None -> `Req { meth; target; version; headers; body = "" }
                | Some s -> (
                    match int_of_string_opt (String.trim s) with
                    | None -> `Bad "malformed content-length"
                    | Some n when n < 0 -> `Bad "malformed content-length"
                    | Some n when n > max_body -> `Payload_too_large
                    | Some n -> (
                        (match header_value headers "expect" with
                        | Some e when String.lowercase_ascii e = "100-continue"
                          ->
                            output_string oc "HTTP/1.1 100 Continue\r\n\r\n";
                            flush oc
                        | _ -> ());
                        match really_input_string ic n with
                        | body -> `Req { meth; target; version; headers; body }
                        | exception End_of_file -> `Bad "eof inside body")))))

(* ----------------------------- responses ---------------------------- *)

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

(* Fixed-length responses only: Content-Length on every exchange keeps
   the framing trivial and keep-alive safe. *)
let write_response oc ~status ?(extra = []) ~keep_alive body =
  Chaos.fire "server.write";
  let b = Buffer.create (256 + String.length body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (reason_phrase status));
  Buffer.add_string b "Content-Type: application/json\r\n";
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n"
     else "Connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    extra;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  output_string oc (Buffer.contents b);
  flush oc

let error_body ~reason msg =
  Jsonx.to_string
    (Jsonx.Obj
       [
         ("id", Jsonx.Null);
         ("ok", Jsonx.Bool false);
         ( "diagnostics",
           Jsonx.List
             [
               Jsonx.Obj
                 [
                   ("severity", Jsonx.String "error");
                   ("component", Jsonx.String "http");
                   ("reason", Jsonx.String reason);
                   ("message", Jsonx.String msg);
                 ];
             ] );
       ])

(* Map a service response line to an HTTP status so load balancers can
   react without parsing the body: queue_full -> 429 (+ Retry-After),
   draining -> 503; every other outcome — including per-request errors
   like an invalid spec — is an in-band answer, hence 200.  Refusal
   bodies are tiny; the substring guard keeps the common ok path from
   paying a parse of a multi-kilobyte solution. *)
let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let status_of_body body =
  if not (contains_substring body "\"ok\":false") then (200, [])
  else
    match Jsonx.parse body with
    | Error _ -> (200, [])
    | Ok j -> (
        let reason =
          match Jsonx.member "diagnostics" j with
          | Some (Jsonx.List (d :: _)) -> (
              match Jsonx.member "reason" d with
              | Some (Jsonx.String r) -> Some r
              | _ -> None)
          | _ -> None
        in
        match reason with
        | Some "queue_full" ->
            let retry_s =
              match Jsonx.member "retry_after_ms" j with
              | Some v -> (
                  match Jsonx.get_float v with
                  | Some ms -> int_of_float (Float.ceil (ms /. 1e3))
                  | None -> 1)
              | None -> 1
            in
            (429, [ ("Retry-After", string_of_int (max 1 retry_s)) ])
        | Some "draining" -> (503, [])
        | _ -> (200, []))

(* ---------------------------- connection ---------------------------- *)

(* Block the connection thread until the admitted job's response lands.
   HTTP/1.1 without pipelining is one exchange at a time per connection,
   so a plain rendezvous is the whole synchronization story: [admit]'s
   reply contract (called exactly once, possibly from a worker thread)
   guarantees the wait terminates. *)
let solve_via_queue service line =
  let lock = Mutex.create () in
  let cond = Condition.create () in
  let cell = ref None in
  Service.admit service
    ~reply:(fun resp ->
      Mutex.protect lock (fun () ->
          cell := Some resp;
          Condition.signal cond))
    line;
  Mutex.protect lock (fun () ->
      let rec wait () =
        match !cell with
        | Some resp -> resp
        | None ->
            Condition.wait cond lock;
            wait ()
      in
      wait ())

let healthz_body service =
  if Service.draining service then
    (503, {|{"status":"draining"}|})
  else (200, {|{"status":"ok"}|})

let handle_request service oc req =
  let keep = keep_alive req in
  (match (req.meth, req.target) with
  | "POST", "/solve" ->
      let line = Chaos.mangle "server.read" req.body in
      if String.trim line = "" then
        write_response oc ~status:400 ~keep_alive:keep
          (error_body ~reason:"bad_request" "empty request body")
      else begin
        let body = solve_via_queue service line in
        let status, extra = status_of_body body in
        write_response oc ~status ~extra ~keep_alive:keep body
      end
  | "GET", "/stats" ->
      let body = Service.handle_line service {|{"kind":"stats"}|} in
      write_response oc ~status:200 ~keep_alive:keep body
  | ("GET" | "HEAD"), "/healthz" ->
      (* Liveness probe: deliberately outside the request counters so a
         load balancer polling every second does not drown the stats. *)
      let status, body = healthz_body service in
      write_response oc ~status ~keep_alive:keep
        (if req.meth = "HEAD" then "" else body)
  | _, ("/solve" | "/stats" | "/healthz") ->
      let allow =
        match req.target with "/solve" -> "POST" | _ -> "GET, HEAD"
      in
      write_response oc ~status:405
        ~extra:[ ("Allow", allow) ]
        ~keep_alive:keep
        (error_body ~reason:"method_not_allowed"
           (Printf.sprintf "%s not allowed on %s" req.meth req.target))
  | _ ->
      write_response oc ~status:404 ~keep_alive:keep
        (error_body ~reason:"not_found"
           (Printf.sprintf "no such endpoint %s" req.target)));
  keep

(* Serve one connection until it closes, asks to close, or breaks
   framing.  The caller owns the fd (tracking and close). *)
let serve_conn service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match read_request ic oc with
    | `Eof -> ()
    | `Payload_too_large ->
        (* the unread body poisons the framing: answer and close *)
        write_response oc ~status:413 ~keep_alive:false
          (error_body ~reason:"payload_too_large" "request body too large")
    | `Bad msg ->
        write_response oc ~status:400 ~keep_alive:false
          (error_body ~reason:"bad_request" msg)
    | `Req req -> if handle_request service oc req then loop ()
  in
  try loop () with Sys_error _ | Unix.Unix_error _ | End_of_file -> ()

(* Transport layer: see server.mli for the concurrency contract. *)

let run_batch service ic oc =
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (Service.handle_line service line);
         output_char oc '\n';
         flush oc;
         incr n
       end
     done
   with End_of_file -> ());
  !n

type t = {
  service : Service.t;
  listen_fd : Unix.file_descr;
  path : string;
  mutable accept_thread : Thread.t option;
  mutable workers : Thread.t list;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  mutable stopped : bool;
}

let track t fd = Mutex.protect t.conns_lock (fun () -> Hashtbl.replace t.conns fd ())

let untrack t fd =
  Mutex.protect t.conns_lock (fun () -> Hashtbl.remove t.conns fd)

let handle_conn t fd =
  track t fd;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* One response line at a time per connection: workers race to answer,
     the mutex keeps their writes from interleaving mid-line. *)
  let wlock = Mutex.create () in
  let reply line =
    try
      Mutex.protect wlock (fun () ->
          output_string oc line;
          output_char oc '\n';
          flush oc)
    with Sys_error _ | Unix.Unix_error _ -> ()
    (* client went away; drop the response *)
  in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         let service = t.service in
         let accepted =
           Service.submit service (fun () ->
               reply (Service.handle_line service line))
         in
         if not accepted then reply (Service.reject_overloaded service line)
       end
     done
   with End_of_file | Sys_error _ | Unix.Unix_error _ -> ());
  untrack t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ?(workers = 1) ?(backlog = 16) service ~path () =
  if workers < 1 then invalid_arg "Server.start: workers must be positive";
  (* A write to a disconnected client must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if Sys.file_exists path then Sys.remove path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd backlog
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      service;
      listen_fd;
      path;
      accept_thread = None;
      workers = [];
      conns = Hashtbl.create 8;
      conns_lock = Mutex.create ();
      stopped = false;
    }
  in
  let accept_loop () =
    try
      while not t.stopped do
        let fd, _ = Unix.accept t.listen_fd in
        if t.stopped then (try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (handle_conn t) fd)
      done
    with Unix.Unix_error _ | Sys_error _ -> ()
    (* listen socket closed: stop *)
  in
  t.accept_thread <- Some (Thread.create accept_loop ());
  t.workers <-
    List.init workers (fun _ -> Thread.create Service.run_worker service);
  t

let wait t =
  Option.iter Thread.join t.accept_thread;
  List.iter Thread.join t.workers

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* A thread already blocked in accept(2) does not observe close(2) of
       the listening socket on Linux; wake it with a throwaway connection
       before closing. *)
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX t.path)
        with Unix.Unix_error _ -> ());
       Unix.close fd
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Service.stop_workers t.service;
    (* Shutting the connections down unblocks their reader threads. *)
    Mutex.protect t.conns_lock (fun () ->
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.conns);
    (try Sys.remove t.path with Sys_error _ -> ());
    wait t
  end

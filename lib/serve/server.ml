(* Transport layer: see server.mli for the concurrency contract. *)

let run_batch service ic oc =
  let n = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         output_string oc (Service.handle_line service line);
         output_char oc '\n';
         flush oc;
         incr n
       end
     done
   with End_of_file -> ());
  !n

type listener = {
  l_fd : Unix.file_descr;
  l_kind : [ `Jsonl of string  (** unix socket path *)
           | `Http of int  (** bound TCP port *) ];
}

type t = {
  service : Service.t;
  listeners : listener list;
  mutable accept_threads : Thread.t list;
  mutable workers : Thread.t list;
  conns : (Unix.file_descr, unit) Hashtbl.t;
  conns_lock : Mutex.t;
  stop_lock : Mutex.t;  (** serializes concurrent {!stop} calls *)
  mutable stopped : bool;
}

let http_port t =
  List.find_map
    (function { l_kind = `Http port; _ } -> Some port | _ -> None)
    t.listeners

let track t fd = Mutex.protect t.conns_lock (fun () -> Hashtbl.replace t.conns fd ())

let untrack t fd =
  Mutex.protect t.conns_lock (fun () -> Hashtbl.remove t.conns fd)

let live_conns t = Mutex.protect t.conns_lock (fun () -> Hashtbl.length t.conns)

let handle_jsonl_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* One response line at a time per connection: workers race to answer,
     the mutex keeps their writes from interleaving mid-line. *)
  let wlock = Mutex.create () in
  let reply line =
    try
      Mutex.protect wlock (fun () ->
          Chaos.fire "server.write";
          output_string oc line;
          output_char oc '\n';
          flush oc)
    with Sys_error _ | Unix.Unix_error _ -> ()
    (* client went away; drop the response *)
  in
  try
    while true do
      let line = Chaos.mangle "server.read" (input_line ic) in
      if String.trim line <> "" then Service.admit t.service ~reply line
    done
  with End_of_file | Sys_error _ | Unix.Unix_error _ -> ()

let handle_conn t kind fd =
  track t fd;
  (match kind with
  | `Jsonl _ -> handle_jsonl_conn t fd
  | `Http _ -> ( try Http.serve_conn t.service fd with _ -> ()));
  untrack t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A socket file may be left behind by a crashed server or belong to a
   live one.  Probe with connect(2): a refused/absent peer means stale
   (unlink and rebind), an accepted connection means another server owns
   the path (surface EADDRINUSE instead of silently hijacking it). *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception Unix.Unix_error _ ->
          (* Not conclusively dead (e.g. EACCES): treat as live rather
             than unlink something we cannot vouch for. *)
          true
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    try Sys.remove path with Sys_error _ -> ()
  end

let bind_unix ~backlog path =
  claim_socket_path path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { l_fd = fd; l_kind = `Jsonl path }

let bind_http ~backlog (host, port) =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ ->
      invalid_arg (Printf.sprintf "Server.start: bad HTTP address %S" host)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (addr, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (* port 0 asks the kernel for an ephemeral port; report the real one *)
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { l_fd = fd; l_kind = `Http bound }

let start ?(workers = 1) ?(backlog = 16) ?path ?http service () =
  if workers < 1 then invalid_arg "Server.start: workers must be positive";
  if path = None && http = None then
    invalid_arg "Server.start: need at least one of ~path / ~http";
  (* A write to a disconnected client must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listeners = ref [] in
  (try
     Option.iter (fun p -> listeners := [ bind_unix ~backlog p ]) path;
     Option.iter
       (fun hp -> listeners := bind_http ~backlog hp :: !listeners)
       http
   with e ->
     List.iter
       (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
       !listeners;
     raise e);
  let t =
    {
      service;
      listeners = !listeners;
      accept_threads = [];
      workers = [];
      conns = Hashtbl.create 8;
      conns_lock = Mutex.create ();
      stop_lock = Mutex.create ();
      stopped = false;
    }
  in
  let accept_loop l () =
    try
      while not t.stopped do
        match Unix.accept l.l_fd with
        | fd, _ ->
            if t.stopped then (try Unix.close fd with Unix.Unix_error _ -> ())
            else ignore (Thread.create (handle_conn t l.l_kind) fd)
        | exception Unix.Unix_error (Unix.EINTR, _, _) ->
            (* a signal (e.g. a shutdown request) landed in this thread:
               re-check the stop flag and keep accepting *)
            ()
      done
    with Unix.Unix_error _ | Sys_error _ -> ()
    (* listen socket closed: stop *)
  in
  t.accept_threads <-
    List.map (fun l -> Thread.create (accept_loop l) ()) t.listeners;
  (* Every shard needs at least one worker draining its queue; extra
     workers are spread round-robin so a hot shard still gets request
     concurrency. *)
  let n_workers = max workers (Service.n_shards service) in
  t.workers <-
    List.init n_workers (fun k ->
        Thread.create
          (fun () ->
            Service.run_shard_worker service (k mod Service.n_shards service))
          ());
  t

let wait t =
  List.iter Thread.join t.accept_threads;
  List.iter Thread.join t.workers

(* Poll until [cond] or the budget runs out; coarse 2 ms ticks are fine
   for a shutdown path. *)
let wait_until ~budget_ms cond =
  let deadline = Unix.gettimeofday () +. (budget_ms /. 1e3) in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () >= deadline then cond ()
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* A thread already blocked in accept(2) does not observe close(2) of
   the listening socket on Linux; wake it with a throwaway connection
   before closing. *)
let wake_listener l =
  try
    match l.l_kind with
    | `Jsonl path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with Unix.Unix_error _ -> ());
        Unix.close fd
    | `Http port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect fd
             (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
         with Unix.Unix_error _ -> ());
        Unix.close fd
  with Unix.Unix_error _ -> ()

let stop ?(drain_ms = 0.) t =
  Mutex.protect t.stop_lock (fun () ->
      if not t.stopped then begin
        (* Phase 1 — stop taking on work: refuse new requests, stop
           accepting connections.  Established connections stay open so
           queued and in-flight responses can still be written. *)
        Service.begin_drain t.service;
        t.stopped <- true;
        List.iter wake_listener t.listeners;
        List.iter
          (fun l -> try Unix.close l.l_fd with Unix.Unix_error _ -> ())
          t.listeners;
        (* Phase 2 — drain: let the workers finish what was admitted,
           up to the budget; then cancel whatever is still solving and
           give the cancellations a moment to unwind and answer. *)
        let drained =
          drain_ms > 0.
          && wait_until ~budget_ms:drain_ms (fun () -> Service.idle t.service)
        in
        if not drained then begin
          Service.cancel_inflight t.service;
          ignore
            (wait_until ~budget_ms:1000. (fun () -> Service.idle t.service))
        end;
        Service.stop_workers t.service;
        (* Shutting the connections down unblocks their reader threads. *)
        Mutex.protect t.conns_lock (fun () ->
            Hashtbl.iter
              (fun fd () ->
                try Unix.shutdown fd Unix.SHUTDOWN_ALL
                with Unix.Unix_error _ -> ())
              t.conns);
        List.iter
          (function
            | { l_kind = `Jsonl path; _ } -> (
                try Sys.remove path with Sys_error _ -> ())
            | _ -> ())
          t.listeners;
        wait t
      end)

(** Input specification of one RAM array (a bank): the logical geometry the
    partitioning must realize, independent of cache-level concerns.

    A cache data array with capacity C, block size B and associativity A maps
    here as [n_rows = C/(B·A)] logical rows of [row_bits = 8·B·A] bits;
    a main-memory DRAM bank maps its rows/page structure with the
    [page_bits] constraint of Section 2.1 (total sense amplifiers in a
    subbank = page size). *)

type t = {
  ram : Cacti_tech.Cell.ram_kind;
  tech : Cacti_tech.Technology.t;
  n_rows : int;  (** logical rows *)
  row_bits : int;  (** bits per logical row *)
  output_bits : int;  (** bits delivered to the port per access *)
  max_repeater_delay_penalty : float;
      (** Section 2.4 [max repeater delay constraint] *)
  sleep_tx : bool;
      (** halve the leakage of mats not activated by an access (Xeon-style
          sleep transistors) *)
  page_bits : int option;
      (** when set, only organizations whose activated-slice sense-amp count
          equals this page size are valid (main-memory chips) *)
}

val create :
  ?max_repeater_delay_penalty:float ->
  ?sleep_tx:bool ->
  ?page_bits:int ->
  ram:Cacti_tech.Cell.ram_kind ->
  tech:Cacti_tech.Technology.t ->
  n_rows:int ->
  row_bits:int ->
  output_bits:int ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive geometry. *)

val validate : t -> (t, Cacti_util.Diag.t list) result
(** Spec-level consistency checks (positive geometry and page size, finite
    non-negative repeater penalty, output no wider than the array), run
    before any circuit modeling.  Collects every failure. *)

val capacity_bits : t -> int
val addr_bits : t -> int
(** Bits needed to address one output word. *)

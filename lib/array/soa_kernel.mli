(** Structure-of-arrays batch store for the staged solver.

    Flattens the hierarchical screen's surviving candidates into float64
    Bigarray columns — one column per geometry/organization parameter the
    bank-level bounds consume, plus result columns for the lower bounds
    and all final bank metrics — so {!Cacti_array.Bank}'s sweep runs
    branch-free float math over chunked ranges instead of per-candidate
    closures and records.  Parameter columns store [float_of_int] of
    exact integers (well inside the float64 mantissa) and result columns
    round-trip losslessly, so kernel sweeps are bit-identical to the
    scalar path. *)

type col = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type metrics = {
  m_width : float;
  m_height : float;
  m_area : float;
  m_area_efficiency : float;
  m_t_access : float;
  m_t_random_cycle : float;
  m_t_interleave : float;
  m_e_read : float;
  m_e_write : float;
  m_e_activate : float;
  m_e_precharge : float;
  m_p_leakage : float;
  m_p_refresh : float;
  m_t_rcd : float;  (** DRAM interface timings; 0 for SRAM *)
  m_t_cas : float;
  m_t_ras : float;
  m_t_rp : float;
  m_t_rc : float;
  m_t_rrd : float;
}
(** Bank-level metrics of one candidate as a flat (unboxed) all-float
    record: the output of the bank assembly minus fields recoverable from
    (spec, org, mat). *)

val n_metric_cols : int

(** Candidate status bytes written by the evaluation loop. *)

val st_pending : char

val st_ok : char

val st_area_pruned : char

val st_bound_pruned : char

val st_nonviable : char

val st_nonfinite : char

val st_raised : char

type t = {
  n : int;
  orgs : Org.t array;
  geos : Mat.geometry array;
  eff_deg : int array;  (** effective bitline-mux degree (1 for DRAM) *)
  f_n_ctl : col;  (** control-block inverter count *)
  f_out_bits : col;
  f_n_mats : col;
  f_n_sa : col;  (** sense amps per mat *)
  f_wspan : col;  (** bank width floor, cells *)
  f_hspan : col;  (** bank height floor, cells *)
  f_line_cells : col;  (** wordline span, cells *)
  f_rows : col;  (** rows per subarray *)
  f_sensed_pa : col;  (** columns sensed per access *)
  f_mats_x : col;  (** active mats *)
  b_area : col;  (** result: area lower bound *)
  b_time : col;  (** result: access-time lower bound *)
  b_energy : col;  (** result: read-energy lower bound *)
  res : col array;
      (** result: [n_metric_cols] per-metric columns, in
          {!metrics} field order *)
  status : Bytes.t;
  mats : Mat.t option array;  (** solved mats of evaluated candidates *)
}

val build :
  ?cancel:Cacti_util.Cancel.t -> is_dram:bool -> (Org.t * Mat.geometry) list -> t
(** Flatten screened survivors into parameter columns (the column_build
    phase).  Every scalar stored is [float_of_int] of the exact integer
    expression the record-based bound evaluation computes, so feeding a
    kernel from the columns is bit-identical to feeding it from the
    records.  [cancel] is polled every few hundred candidates; a fired
    token aborts the build with {!Cacti_util.Cancel.Cancelled}. *)

val set_metrics : t -> int -> metrics -> unit
val get_metrics : t -> int -> metrics

(** Named views of the metric columns the staged selection
    ({!Cacti.Optimizer.select_soa_result}) reads.  Entries are only
    meaningful at indices whose status byte is {!st_ok}. *)

val col_area : t -> col

val col_t_access : t -> col

val col_t_random_cycle : t -> col

val col_t_interleave : t -> col

val col_e_read : t -> col

val col_p_leakage : t -> col

val col_p_refresh : t -> col

val metrics_of_mat :
  staged:Cacti_circuit.Staged.t ->
  spec:Array_spec.t ->
  org:Org.t ->
  Mat.t ->
  metrics
(** The bank-level model on top of a solved mat: H-tree distribution,
    timings, energies, leakage, refresh and area.  The single
    implementation behind both the scalar [Bank.assemble] and the
    columnar kernel sweep. *)

open Cacti_tech
open Cacti_circuit

type t = {
  subarray : Subarray.t;
  n_subarrays : int;
  horiz_subarrays : int;
  width : float;
  height : float;
  area : float;
  decoder : Decoder.t;
  sense : Sense_amp.t;
  n_sense_amps : int;
  active_cols : int;
  sensed_bits : int;
  out_bits : int;
  t_row_path : float;
  t_wordline : float;
  t_bitline : float;
  t_sense : float;
  t_column_out : float;
  t_precharge : float;
  t_restore : float;
  e_row_activate : float;
  e_column_read : float;
  e_column_write : float;
  e_precharge : float;
  leakage : float;
  leakage_cells : float;
}

let exact_div_f num den =
  let q = num /. den in
  let r = Float.round q in
  if r >= 1. && Float.abs (q -. r) < 1e-9 then Some (int_of_float r) else None

let exact_div num den = if den > 0 && num mod den = 0 then Some (num / den) else None

type geometry = {
  g_rows_sub : int;
  g_cols_sub : int;
  g_horiz : int;
  g_vert : int;
  g_out_bits : int;
  g_sensed : int;
  g_sensed_per_access : int;
}

let classify ~spec ~(org : Org.t) =
  let open Org in
  let { Array_spec.ram; n_rows; row_bits; output_bits; page_bits; _ } = spec in
  let is_dram = Cell.is_dram ram in
  let ( let* ) o f =
    match o with None -> Error `Geometry | Some v -> f v
  in
  let* rows_sub =
    exact_div_f (float_of_int n_rows) (float_of_int org.ndbl *. org.nspd)
  in
  let* cols_sub =
    exact_div_f (float_of_int row_bits *. org.nspd) (float_of_int org.ndwl)
  in
  if rows_sub < 16 || rows_sub > 4096 || cols_sub < 16 || cols_sub > 8192 then
    Error `Geometry
  else
    let horiz = min org.ndwl 2 and vert = min org.ndbl 2 in
    let mats_x = Org.mats_x org in
    let* bits_per_mat = exact_div output_bits mats_x in
    let* sensed =
      exact_div (horiz * cols_sub) (if is_dram then 1 else org.deg_bl_mux)
    in
    let* out_bits = exact_div sensed (org.ndsam_lev1 * org.ndsam_lev2) in
    if out_bits <> bits_per_mat then Error `Geometry
    else
      let sensed_per_access = if is_dram then horiz * cols_sub else sensed in
      (* Main-memory page constraint: sense amps of the activated slice. *)
      let page_ok =
        match page_bits with
        | None -> true
        | Some p -> mats_x * sensed_per_access = p
      in
      if not page_ok then Error `Page
      else
        Ok
          {
            g_rows_sub = rows_sub;
            g_cols_sub = cols_sub;
            g_horiz = horiz;
            g_vert = vert;
            g_out_bits = out_bits;
            g_sensed = sensed;
            g_sensed_per_access = sensed_per_access;
          }

let geometry ~spec ~org = Result.to_option (classify ~spec ~org)

let make ~spec ~org () =
  let open Org in
  let { Array_spec.ram; tech; _ } = spec in
  let cell = Technology.cell tech ram in
  let periph = Technology.peripheral_device tech ram in
  let feature = Technology.feature_size tech in
  let area_model = Area_model.create ~feature_size:feature ~l_gate:periph.Device.l_phy in
  let is_dram = Cell.is_dram ram in
  match geometry ~spec ~org with
  | None -> None
  | Some { g_rows_sub = rows_sub; g_cols_sub = cols_sub; g_horiz = horiz;
           g_vert = vert; g_out_bits = out_bits; g_sensed = sensed;
           g_sensed_per_access = _ } ->
      (* Sense amplifiers first (their input loading feeds the bitline). *)
      let cell_pitch = Cell.width cell ~feature_size:feature in
      let deg = if is_dram then 1 else org.deg_bl_mux in
      let sense =
        Sense_amp.make ~device:periph ~area:area_model ~feature
          ~cell_pitch:(if is_dram then 2. *. cell_pitch else cell_pitch)
          ~deg_bl_mux:deg ()
      in
      let subarray =
        Subarray.make ~tech ~ram ~rows:rows_sub ~cols:cols_sub
          ~c_sense_input:(sense.Sense_amp.c_input /. float_of_int deg)
      in
      if not (Subarray.viable subarray) then None
      else
        let n_subarrays = horiz * vert in
        let active_cols = horiz * cols_sub in
        let n_sense_amps = sensed in
        (* Row decoder: one strip serving all wordlines of the mat; the
           selected wordline spans the horizontal subarrays. *)
        let wire_local = Technology.wire tech Local in
        let c_line =
          float_of_int horiz *. subarray.Subarray.c_wordline
        in
        let r_line = float_of_int horiz *. subarray.Subarray.r_wordline in
        let n_wordlines = rows_sub * vert in
        let decoder =
          Decoder.decoder ~periph ~area:area_model ~feature ~wire:wire_local
            ~n_select:n_wordlines
            ~strip_length:(float_of_int vert *. subarray.Subarray.height)
            ~c_line ~r_line ~v_line_swing:cell.Cell.vpp ()
        in
        let t_row_path = decoder.Decoder.stage.Stage.delay in
        let t_wordline = decoder.Decoder.t_gate_drive +. decoder.Decoder.t_line in
        (* Bitline and sensing. *)
        let vdd_p = periph.Device.vdd in
        let t_bitline, t_sense, t_precharge, t_restore =
          match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
          | Some bl, None ->
              ( bl.Bitline.t_read_develop,
                Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.swing,
                bl.Bitline.t_precharge,
                0. )
          | None, Some bl ->
              ( bl.Bitline.t_charge_share,
                Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.signal,
                bl.Bitline.t_precharge,
                bl.Bitline.t_restore )
          | _ -> assert false
        in
        (* Column path: bitline mux (SRAM), then the two Ndsam levels. *)
        let mux_bl =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:deg ~c_in_next:sense.Sense_amp.c_input ()
        in
        let mux1 =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:org.ndsam_lev1 ~c_in_next:(20. *. feature *. periph.Device.c_gate) ()
        in
        let mux2 =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:org.ndsam_lev2 ~c_in_next:(30. *. feature *. periph.Device.c_gate) ()
        in
        let t_column_out =
          (if deg > 1 then mux_bl.Mux.delay else 0.)
          +. mux1.Mux.delay +. mux2.Mux.delay
        in
        (* Per-mat support circuitry that CACTI folds into every mat: write
           drivers on the output columns, address latches/receivers and the
           self-timed control block.  Modeled as inverter-equivalents. *)
        let ctl_inv = Gate.inverter ~area:area_model periph ~w_n:(10. *. feature) in
        let wr_drv = Gate.inverter ~area:area_model periph ~w_n:(24. *. feature) in
        let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
        let control_area =
          (float_of_int n_ctl *. ctl_inv.Gate.area)
          +. (float_of_int out_bits *. 2. *. wr_drv.Gate.area)
        in
        let control_leakage =
          (float_of_int n_ctl *. ctl_inv.Gate.leakage)
          +. (float_of_int out_bits *. 2. *. wr_drv.Gate.leakage)
        in
        let control_energy =
          float_of_int n_ctl *. 0.25
          *. Gate.switching_energy ctl_inv ~c_load:ctl_inv.Gate.c_in
        in
        (* Energies. *)
        let e_bl_activate_per_col, e_bl_write_per_col, e_pre_per_col =
          match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
          | Some bl, None ->
              (bl.Bitline.e_read_per_column, bl.Bitline.e_write_per_column, 0.)
          | None, Some bl ->
              ( bl.Bitline.e_activate_per_column,
                bl.Bitline.e_write_per_column,
                bl.Bitline.e_precharge_per_column )
          | _ -> assert false
        in
        let sensed_per_access = if is_dram then active_cols else sensed in
        let e_row_activate =
          decoder.Decoder.stage.Stage.energy +. control_energy
          +. (float_of_int active_cols *. e_bl_activate_per_col)
          +. (float_of_int sensed_per_access *. sense.Sense_amp.energy)
        in
        let e_column_read =
          float_of_int out_bits
          *. ((if deg > 1 then mux_bl.Mux.e_per_output_bit else 0.)
             +. mux1.Mux.e_per_output_bit +. mux2.Mux.e_per_output_bit
             +. (0.5 *. 30. *. feature *. periph.Device.c_gate *. vdd_p *. vdd_p))
        in
        let e_column_write =
          float_of_int out_bits *. e_bl_write_per_col
        in
        let e_precharge = float_of_int active_cols *. e_pre_per_col in
        (* Leakage. *)
        let n_cells = rows_sub * vert * cols_sub * horiz in
        let leakage_cells =
          float_of_int n_cells *. cell.Cell.i_cell_leak *. cell.Cell.vdd_cell
        in
        let n_sa_total = if is_dram then active_cols * vert / vert else n_sense_amps in
        let leakage_periph =
          decoder.Decoder.stage.Stage.leakage
          +. (float_of_int n_sa_total *. sense.Sense_amp.leakage)
          +. (float_of_int out_bits
             *. (mux1.Mux.leakage +. mux2.Mux.leakage
                +. if deg > 1 then mux_bl.Mux.leakage else 0.))
        in
        let leakage = leakage_cells +. leakage_periph +. control_leakage in
        (* Geometry: decoder strip between the subarray halves; sense strip
           below. *)
        let core_w = float_of_int horiz *. subarray.Subarray.width in
        let core_h = float_of_int vert *. subarray.Subarray.height in
        let dec_strip_w = decoder.Decoder.stage.Stage.area /. core_h in
        let sa_area =
          (float_of_int n_sa_total *. sense.Sense_amp.area)
          +. (float_of_int out_bits
             *. (mux1.Mux.area_per_output_bit +. mux2.Mux.area_per_output_bit))
          +. float_of_int sensed
             *. (if deg > 1 then mux_bl.Mux.area_per_output_bit /. float_of_int deg else 0.)
        in
        let sa_strip_h = (sa_area +. control_area) /. core_w in
        let width = core_w +. dec_strip_w in
        let height = core_h +. sa_strip_h in
        Some
          {
            subarray;
            n_subarrays;
            horiz_subarrays = horiz;
            width;
            height;
            area = width *. height;
            decoder;
            sense;
            n_sense_amps = n_sa_total;
            active_cols;
            sensed_bits = sensed_per_access;
            out_bits;
            t_row_path;
            t_wordline;
            t_bitline;
            t_sense;
            t_column_out;
            t_precharge;
            t_restore;
            e_row_activate;
            e_column_read;
            e_column_write;
            e_precharge;
            leakage;
            leakage_cells;
          }

open Cacti_tech
open Cacti_circuit

type t = {
  subarray : Subarray.t;
  n_subarrays : int;
  horiz_subarrays : int;
  width : float;
  height : float;
  area : float;
  decoder : Decoder.t;
  sense : Sense_amp.t;
  n_sense_amps : int;
  active_cols : int;
  sensed_bits : int;
  out_bits : int;
  t_row_path : float;
  t_wordline : float;
  t_bitline : float;
  t_sense : float;
  t_column_out : float;
  t_precharge : float;
  t_restore : float;
  e_row_activate : float;
  e_column_read : float;
  e_column_write : float;
  e_precharge : float;
  leakage : float;
  leakage_cells : float;
}

let exact_div_f num den =
  let q = num /. den in
  let r = Float.round q in
  if r >= 1. && Float.abs (q -. r) < 1e-9 then Some (int_of_float r) else None

let exact_div num den = if den > 0 && num mod den = 0 then Some (num / den) else None

type geometry = {
  g_rows_sub : int;
  g_cols_sub : int;
  g_horiz : int;
  g_vert : int;
  g_out_bits : int;
  g_sensed : int;
  g_sensed_per_access : int;
}

let classify ~spec ~(org : Org.t) =
  let open Org in
  let { Array_spec.ram; n_rows; row_bits; output_bits; page_bits; _ } = spec in
  let is_dram = Cell.is_dram ram in
  let ( let* ) o f =
    match o with None -> Error `Geometry | Some v -> f v
  in
  let* rows_sub =
    exact_div_f (float_of_int n_rows) (float_of_int org.ndbl *. org.nspd)
  in
  let* cols_sub =
    exact_div_f (float_of_int row_bits *. org.nspd) (float_of_int org.ndwl)
  in
  if rows_sub < 16 || rows_sub > 4096 || cols_sub < 16 || cols_sub > 8192 then
    Error `Geometry
  else
    let horiz = min org.ndwl 2 and vert = min org.ndbl 2 in
    let mats_x = Org.mats_x org in
    let* bits_per_mat = exact_div output_bits mats_x in
    let* sensed =
      exact_div (horiz * cols_sub) (if is_dram then 1 else org.deg_bl_mux)
    in
    let* out_bits = exact_div sensed (org.ndsam_lev1 * org.ndsam_lev2) in
    if out_bits <> bits_per_mat then Error `Geometry
    else
      let sensed_per_access = if is_dram then horiz * cols_sub else sensed in
      (* Main-memory page constraint: sense amps of the activated slice. *)
      let page_ok =
        match page_bits with
        | None -> true
        | Some p -> mats_x * sensed_per_access = p
      in
      if not page_ok then Error `Page
      else
        Ok
          {
            g_rows_sub = rows_sub;
            g_cols_sub = cols_sub;
            g_horiz = horiz;
            g_vert = vert;
            g_out_bits = out_bits;
            g_sensed = sensed;
            g_sensed_per_access = sensed_per_access;
          }

let geometry ~spec ~org = Result.to_option (classify ~spec ~org)

(* Hierarchical screen: walk the partition grid as nested loops (in exactly
   the {!Org.candidates} order) and hoist each tiling check to the
   outermost level whose dimensions determine it, bulk-counting the pruned
   subtree instead of visiting its leaves.  Equivalent to running
   {!classify} over the flat grid: every hoisted check maps to [`Geometry]
   in [classify] (checks are order-independent for the count because all
   of them yield [`Geometry]), and [`Page] is only ever decided at a leaf
   where all geometry checks passed — the same condition under which the
   flat screen reaches it.  Cuts a 64x64 SRAM sweep from ~63k classify
   calls to ~245 interior probes plus the surviving leaves. *)
let screen ?(max_ndwl = 64) ?(max_ndbl = 64) ~spec () =
  let { Array_spec.ram; n_rows; row_bits; output_bits; page_bits; _ } = spec in
  let is_dram = Cell.is_dram ram in
  let ndwls = Org.pow2s max_ndwl and ndbls = Org.pow2s max_ndbl in
  let nspds = Org.nspds
  and degs = Org.bl_muxes ~dram:is_dram
  and ndsams = Org.ndsams in
  let n_ns = List.length ndsams in
  let leaves_per_deg = n_ns * n_ns in
  let leaves_per_nspd = List.length degs * leaves_per_deg in
  let leaves_per_ndwl =
    List.length ndbls * List.length nspds * leaves_per_nspd
  in
  let n_total = List.length ndwls * leaves_per_ndwl in
  let n_geometry = ref 0 and n_page = ref 0 in
  let acc = ref [] in
  let f_rows = float_of_int n_rows and f_row_bits = float_of_int row_bits in
  List.iter
    (fun ndwl ->
      let mats_x = max 1 (ndwl / 2) in
      let horiz = min ndwl 2 in
      match exact_div output_bits mats_x with
      | None -> n_geometry := !n_geometry + leaves_per_ndwl
      | Some bits_per_mat ->
          List.iter
            (fun ndbl ->
              let vert = min ndbl 2 in
              let f_ndbl = float_of_int ndbl in
              List.iter
                (fun nspd ->
                  let dims =
                    match exact_div_f f_rows (f_ndbl *. nspd) with
                    | None -> None
                    | Some rows_sub -> (
                        match
                          exact_div_f (f_row_bits *. nspd) (float_of_int ndwl)
                        with
                        | None -> None
                        | Some cols_sub ->
                            if
                              rows_sub < 16 || rows_sub > 4096 || cols_sub < 16
                              || cols_sub > 8192
                            then None
                            else Some (rows_sub, cols_sub))
                  in
                  match dims with
                  | None -> n_geometry := !n_geometry + leaves_per_nspd
                  | Some (rows_sub, cols_sub) ->
                      List.iter
                        (fun deg ->
                          let eff_deg = if is_dram then 1 else deg in
                          match exact_div (horiz * cols_sub) eff_deg with
                          | None ->
                              n_geometry := !n_geometry + leaves_per_deg
                          | Some sensed ->
                              (* Checks 6+7 of [classify] combine to
                                 [ns1 * ns2 * bits_per_mat = sensed]. *)
                              let target =
                                if
                                  bits_per_mat > 0
                                  && sensed mod bits_per_mat = 0
                                then sensed / bits_per_mat
                                else -1
                              in
                              if target < 0 then
                                n_geometry := !n_geometry + leaves_per_deg
                              else
                                let sensed_per_access =
                                  if is_dram then horiz * cols_sub else sensed
                                in
                                let page_ok =
                                  match page_bits with
                                  | None -> true
                                  | Some p -> mats_x * sensed_per_access = p
                                in
                                let g =
                                  {
                                    g_rows_sub = rows_sub;
                                    g_cols_sub = cols_sub;
                                    g_horiz = horiz;
                                    g_vert = vert;
                                    g_out_bits = bits_per_mat;
                                    g_sensed = sensed;
                                    g_sensed_per_access = sensed_per_access;
                                  }
                                in
                                List.iter
                                  (fun ndsam_lev1 ->
                                    List.iter
                                      (fun ndsam_lev2 ->
                                        if ndsam_lev1 * ndsam_lev2 = target
                                        then
                                          if page_ok then
                                            acc :=
                                              ( {
                                                  Org.ndwl;
                                                  ndbl;
                                                  nspd;
                                                  deg_bl_mux = deg;
                                                  ndsam_lev1;
                                                  ndsam_lev2;
                                                },
                                                g )
                                              :: !acc
                                          else incr n_page
                                        else incr n_geometry)
                                      ndsams)
                                  ndsams)
                        degs)
                nspds)
            ndbls)
    ndwls;
  (List.rev !acc, n_total, !n_geometry, !n_page)

let staged_of_spec (spec : Array_spec.t) =
  Staged.make ~tech:spec.Array_spec.tech ~ram:spec.Array_spec.ram
    ~max_repeater_delay_penalty:spec.Array_spec.max_repeater_delay_penalty ()

(* The circuit solution of a mat is fully determined by the staged
   constants plus this tuple; candidates across the partition grid that
   share it share the mat solution bit-for-bit (the remaining spec fields
   — n_rows, output_bits, sleep_tx, repeater penalty — enter only at the
   classify screen or the bank level). *)
let fingerprint ~spec ~(org : Org.t) (g : geometry) =
  let is_dram = Cell.is_dram spec.Array_spec.ram in
  let deg = if is_dram then 1 else org.Org.deg_bl_mux in
  Printf.sprintf "%s|%h|%s|%d|%d|%d|%d|%d|%d|%d"
    (Cell.ram_kind_to_string spec.Array_spec.ram)
    (Technology.feature_size spec.Array_spec.tech)
    (match Technology.wire_projection spec.Array_spec.tech with
    | Wire.Aggressive -> "a"
    | Wire.Conservative -> "c")
    g.g_rows_sub g.g_cols_sub g.g_horiz g.g_vert deg org.Org.ndsam_lev1
    org.Org.ndsam_lev2

let make_staged ~(staged : Staged.t) ~spec ~org () =
  let open Org in
  let { Staged.cell; periph; feature; area = area_model; is_dram; tech; ram; _ }
      =
    staged
  in
  match geometry ~spec ~org with
  | None -> None
  | Some { g_rows_sub = rows_sub; g_cols_sub = cols_sub; g_horiz = horiz;
           g_vert = vert; g_out_bits = out_bits; g_sensed = sensed;
           g_sensed_per_access = _ } ->
      (* Sense amplifiers first (their input loading feeds the bitline). *)
      let deg = if is_dram then 1 else org.deg_bl_mux in
      let sense = Staged.sense staged ~deg_bl_mux:deg in
      let subarray =
        Subarray.make ~tech ~ram ~rows:rows_sub ~cols:cols_sub
          ~c_sense_input:(sense.Sense_amp.c_input /. float_of_int deg)
      in
      if not (Subarray.viable subarray) then None
      else
        let n_subarrays = horiz * vert in
        let active_cols = horiz * cols_sub in
        let n_sense_amps = sensed in
        (* Row decoder: one strip serving all wordlines of the mat; the
           selected wordline spans the horizontal subarrays. *)
        let wire_local = staged.Staged.wire_local in
        let c_line =
          float_of_int horiz *. subarray.Subarray.c_wordline
        in
        let r_line = float_of_int horiz *. subarray.Subarray.r_wordline in
        let n_wordlines = rows_sub * vert in
        let decoder =
          Decoder.decoder ~periph ~area:area_model ~feature ~wire:wire_local
            ~n_select:n_wordlines
            ~strip_length:(float_of_int vert *. subarray.Subarray.height)
            ~c_line ~r_line ~v_line_swing:cell.Cell.vpp ()
        in
        let t_row_path = decoder.Decoder.stage.Stage.delay in
        let t_wordline = decoder.Decoder.t_gate_drive +. decoder.Decoder.t_line in
        (* Bitline and sensing. *)
        let vdd_p = periph.Device.vdd in
        let t_bitline, t_sense, t_precharge, t_restore =
          match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
          | Some bl, None ->
              ( bl.Bitline.t_read_develop,
                Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.swing,
                bl.Bitline.t_precharge,
                0. )
          | None, Some bl ->
              ( bl.Bitline.t_charge_share,
                Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.signal,
                bl.Bitline.t_precharge,
                bl.Bitline.t_restore )
          | _ -> assert false
        in
        (* Column path: bitline mux (SRAM), then the two Ndsam levels. *)
        let mux_bl =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:deg ~c_in_next:sense.Sense_amp.c_input ()
        in
        let mux1 =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:org.ndsam_lev1 ~c_in_next:(20. *. feature *. periph.Device.c_gate) ()
        in
        let mux2 =
          Mux.pass_gate_mux ~device:periph ~area:area_model ~feature
            ~degree:org.ndsam_lev2 ~c_in_next:(30. *. feature *. periph.Device.c_gate) ()
        in
        let t_column_out =
          (if deg > 1 then mux_bl.Mux.delay else 0.)
          +. mux1.Mux.delay +. mux2.Mux.delay
        in
        (* Per-mat support circuitry that CACTI folds into every mat: write
           drivers on the output columns, address latches/receivers and the
           self-timed control block.  Modeled as inverter-equivalents. *)
        let ctl_inv = staged.Staged.ctl_inv in
        let wr_drv = staged.Staged.wr_drv in
        let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
        let control_area =
          (float_of_int n_ctl *. ctl_inv.Gate.area)
          +. (float_of_int out_bits *. 2. *. wr_drv.Gate.area)
        in
        let control_leakage =
          (float_of_int n_ctl *. ctl_inv.Gate.leakage)
          +. (float_of_int out_bits *. 2. *. wr_drv.Gate.leakage)
        in
        let control_energy =
          float_of_int n_ctl *. 0.25
          *. Gate.switching_energy ctl_inv ~c_load:ctl_inv.Gate.c_in
        in
        (* Energies. *)
        let e_bl_activate_per_col, e_bl_write_per_col, e_pre_per_col =
          match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
          | Some bl, None ->
              (bl.Bitline.e_read_per_column, bl.Bitline.e_write_per_column, 0.)
          | None, Some bl ->
              ( bl.Bitline.e_activate_per_column,
                bl.Bitline.e_write_per_column,
                bl.Bitline.e_precharge_per_column )
          | _ -> assert false
        in
        let sensed_per_access = if is_dram then active_cols else sensed in
        let e_row_activate =
          decoder.Decoder.stage.Stage.energy +. control_energy
          +. (float_of_int active_cols *. e_bl_activate_per_col)
          +. (float_of_int sensed_per_access *. sense.Sense_amp.energy)
        in
        let e_column_read =
          float_of_int out_bits
          *. ((if deg > 1 then mux_bl.Mux.e_per_output_bit else 0.)
             +. mux1.Mux.e_per_output_bit +. mux2.Mux.e_per_output_bit
             +. (0.5 *. 30. *. feature *. periph.Device.c_gate *. vdd_p *. vdd_p))
        in
        let e_column_write =
          float_of_int out_bits *. e_bl_write_per_col
        in
        let e_precharge = float_of_int active_cols *. e_pre_per_col in
        (* Leakage. *)
        let n_cells = rows_sub * vert * cols_sub * horiz in
        let leakage_cells =
          float_of_int n_cells *. cell.Cell.i_cell_leak *. cell.Cell.vdd_cell
        in
        let n_sa_total = if is_dram then active_cols * vert / vert else n_sense_amps in
        let leakage_periph =
          decoder.Decoder.stage.Stage.leakage
          +. (float_of_int n_sa_total *. sense.Sense_amp.leakage)
          +. (float_of_int out_bits
             *. (mux1.Mux.leakage +. mux2.Mux.leakage
                +. if deg > 1 then mux_bl.Mux.leakage else 0.))
        in
        let leakage = leakage_cells +. leakage_periph +. control_leakage in
        (* Geometry: decoder strip between the subarray halves; sense strip
           below. *)
        let core_w = float_of_int horiz *. subarray.Subarray.width in
        let core_h = float_of_int vert *. subarray.Subarray.height in
        let dec_strip_w = decoder.Decoder.stage.Stage.area /. core_h in
        let sa_area =
          (float_of_int n_sa_total *. sense.Sense_amp.area)
          +. (float_of_int out_bits
             *. (mux1.Mux.area_per_output_bit +. mux2.Mux.area_per_output_bit))
          +. float_of_int sensed
             *. (if deg > 1 then mux_bl.Mux.area_per_output_bit /. float_of_int deg else 0.)
        in
        let sa_strip_h = (sa_area +. control_area) /. core_w in
        let width = core_w +. dec_strip_w in
        let height = core_h +. sa_strip_h in
        Some
          {
            subarray;
            n_subarrays;
            horiz_subarrays = horiz;
            width;
            height;
            area = width *. height;
            decoder;
            sense;
            n_sense_amps = n_sa_total;
            active_cols;
            sensed_bits = sensed_per_access;
            out_bits;
            t_row_path;
            t_wordline;
            t_bitline;
            t_sense;
            t_column_out;
            t_precharge;
            t_restore;
            e_row_activate;
            e_column_read;
            e_column_write;
            e_precharge;
            leakage;
            leakage_cells;
          }

let make ~spec ~org () = make_staged ~staged:(staged_of_spec spec) ~spec ~org ()

open Cacti_tech
open Cacti_circuit

type t = {
  subarray : Subarray.t;
  n_subarrays : int;
  horiz_subarrays : int;
  width : float;
  height : float;
  area : float;
  decoder : Decoder.t;
  sense : Sense_amp.t;
  n_sense_amps : int;
  active_cols : int;
  sensed_bits : int;
  out_bits : int;
  t_row_path : float;
  t_wordline : float;
  t_bitline : float;
  t_sense : float;
  t_column_out : float;
  t_precharge : float;
  t_restore : float;
  e_row_activate : float;
  e_column_read : float;
  e_column_write : float;
  e_precharge : float;
  leakage : float;
  leakage_cells : float;
}

let exact_div_f num den =
  let q = num /. den in
  let r = Float.round q in
  if r >= 1. && Float.abs (q -. r) < 1e-9 then Some (int_of_float r) else None

let exact_div num den = if den > 0 && num mod den = 0 then Some (num / den) else None

type geometry = {
  g_rows_sub : int;
  g_cols_sub : int;
  g_horiz : int;
  g_vert : int;
  g_out_bits : int;
  g_sensed : int;
  g_sensed_per_access : int;
}

let classify ~spec ~(org : Org.t) =
  let open Org in
  let { Array_spec.ram; n_rows; row_bits; output_bits; page_bits; _ } = spec in
  let is_dram = Cell.is_dram ram in
  let ( let* ) o f =
    match o with None -> Error `Geometry | Some v -> f v
  in
  let* rows_sub =
    exact_div_f (float_of_int n_rows) (float_of_int org.ndbl *. org.nspd)
  in
  let* cols_sub =
    exact_div_f (float_of_int row_bits *. org.nspd) (float_of_int org.ndwl)
  in
  if rows_sub < 16 || rows_sub > 4096 || cols_sub < 16 || cols_sub > 8192 then
    Error `Geometry
  else
    let horiz = min org.ndwl 2 and vert = min org.ndbl 2 in
    let mats_x = Org.mats_x org in
    let* bits_per_mat = exact_div output_bits mats_x in
    let* sensed =
      exact_div (horiz * cols_sub) (if is_dram then 1 else org.deg_bl_mux)
    in
    let* out_bits = exact_div sensed (org.ndsam_lev1 * org.ndsam_lev2) in
    if out_bits <> bits_per_mat then Error `Geometry
    else
      let sensed_per_access = if is_dram then horiz * cols_sub else sensed in
      (* Main-memory page constraint: sense amps of the activated slice. *)
      let page_ok =
        match page_bits with
        | None -> true
        | Some p -> mats_x * sensed_per_access = p
      in
      if not page_ok then Error `Page
      else
        Ok
          {
            g_rows_sub = rows_sub;
            g_cols_sub = cols_sub;
            g_horiz = horiz;
            g_vert = vert;
            g_out_bits = out_bits;
            g_sensed = sensed;
            g_sensed_per_access = sensed_per_access;
          }

let geometry ~spec ~org = Result.to_option (classify ~spec ~org)

(* Hierarchical screen, factored into a reusable tree.

   The flat screen over [Org.candidates] runs [classify] ~63k times; the
   hierarchical walk hoists each tiling check to the outermost loop level
   whose dimensions determine it and bulk-counts pruned subtrees.  The key
   further observation is that only ONE check depends on the spec's
   [n_rows]: the rows-per-subarray division (and its 16..4096 bound).
   Everything else — bits-per-mat (per ndwl), columns-per-subarray (per
   ndwl x nspd), the sensing/mux-matching/page checks (per ndwl x nspd x
   deg) — is a pure function of [row_bits], [output_bits], [page_bits] and
   the cell kind.  So the screen splits into a rows-independent
   {!screen_tree} built once, and a cheap {!screen_of_tree} instantiation
   per [n_rows] that re-runs only the ~ndbl x nspd row divisions.  This
   both accelerates a cold screen and lets {!Cacti_core.Solve_cache} reuse
   the tree across specs that differ along the size / tech-node axes.

   Equivalence with the flat screen: every hoisted check maps to
   [`Geometry] in [classify] (the counts are order-independent because all
   structural checks yield [`Geometry] — in particular the joint
   rows/cols bound is a commutative conjunction, so splitting it between
   build and instantiation preserves the count), and [`Page] is only ever
   decided at a leaf where all geometry checks passed, exactly as in the
   flat screen.  Survivors are emitted in [Org.candidates] order. *)

type deg_node =
  | Deg_fail
  | Deg of {
      dn_deg : int;
      dn_page_ok : bool;
      dn_tmpl : geometry;
          (* rows-independent template: [g_rows_sub] and [g_vert] are 0
             and are filled in at instantiation *)
      dn_pairs : (int * int) list;
          (* surviving (ndsam_lev1, ndsam_lev2) pairs, in grid order *)
      dn_n_pairs : int;
    }

type nspd_node = Nspd_fail | Nspd of { nn_degs : deg_node array }

type ndwl_node = Ndwl_fail | Ndwl of { wn_nspds : nspd_node array }

type screen_tree = {
  st_ndwls : (int * ndwl_node) array;
  st_ndbls : int array;
  st_nspds : float array;
  st_n_total : int;
  st_leaves_per_ndwl : int;
  st_leaves_per_nspd : int;
  st_leaves_per_deg : int;
}

let screen_key ?(max_ndwl = 64) ?(max_ndbl = 64) ~spec () =
  let { Array_spec.ram; row_bits; output_bits; page_bits; _ } = spec in
  Printf.sprintf "%s|%d|%d|%s|%d|%d"
    (Cell.ram_kind_to_string ram)
    row_bits output_bits
    (match page_bits with None -> "-" | Some p -> string_of_int p)
    max_ndwl max_ndbl

let screen_tree ?(max_ndwl = 64) ?(max_ndbl = 64) ~spec () =
  let { Array_spec.ram; row_bits; output_bits; page_bits; _ } = spec in
  let is_dram = Cell.is_dram ram in
  let ndwls = Org.pow2s max_ndwl and ndbls = Org.pow2s max_ndbl in
  let nspds = Org.nspds
  and degs = Org.bl_muxes ~dram:is_dram
  and ndsams = Org.ndsams in
  let n_ns = List.length ndsams in
  let leaves_per_deg = n_ns * n_ns in
  let leaves_per_nspd = List.length degs * leaves_per_deg in
  let leaves_per_ndwl =
    List.length ndbls * List.length nspds * leaves_per_nspd
  in
  let n_total = List.length ndwls * leaves_per_ndwl in
  let f_row_bits = float_of_int row_bits in
  let ndwl_entry ndwl =
    let mats_x = max 1 (ndwl / 2) in
    let horiz = min ndwl 2 in
    match exact_div output_bits mats_x with
    | None -> (ndwl, Ndwl_fail)
    | Some bits_per_mat ->
        let nspd_node nspd =
          match exact_div_f (f_row_bits *. nspd) (float_of_int ndwl) with
          | None -> Nspd_fail
          | Some cols_sub when cols_sub < 16 || cols_sub > 8192 -> Nspd_fail
          | Some cols_sub ->
              let deg_node deg =
                let eff_deg = if is_dram then 1 else deg in
                match exact_div (horiz * cols_sub) eff_deg with
                | None -> Deg_fail
                | Some sensed ->
                    (* Checks 6+7 of [classify] combine to
                       [ns1 * ns2 * bits_per_mat = sensed]. *)
                    let target =
                      if bits_per_mat > 0 && sensed mod bits_per_mat = 0 then
                        sensed / bits_per_mat
                      else -1
                    in
                    if target < 0 then Deg_fail
                    else
                      let sensed_per_access =
                        if is_dram then horiz * cols_sub else sensed
                      in
                      let page_ok =
                        match page_bits with
                        | None -> true
                        | Some p -> mats_x * sensed_per_access = p
                      in
                      let pairs =
                        List.concat_map
                          (fun ns1 ->
                            List.filter_map
                              (fun ns2 ->
                                if ns1 * ns2 = target then Some (ns1, ns2)
                                else None)
                              ndsams)
                          ndsams
                      in
                      Deg
                        {
                          dn_deg = deg;
                          dn_page_ok = page_ok;
                          dn_tmpl =
                            {
                              g_rows_sub = 0;
                              g_cols_sub = cols_sub;
                              g_horiz = horiz;
                              g_vert = 0;
                              g_out_bits = bits_per_mat;
                              g_sensed = sensed;
                              g_sensed_per_access = sensed_per_access;
                            };
                          dn_pairs = pairs;
                          dn_n_pairs = List.length pairs;
                        }
              in
              Nspd { nn_degs = Array.of_list (List.map deg_node degs) }
        in
        (ndwl, Ndwl { wn_nspds = Array.of_list (List.map nspd_node nspds) })
  in
  {
    st_ndwls = Array.of_list (List.map ndwl_entry ndwls);
    st_ndbls = Array.of_list ndbls;
    st_nspds = Array.of_list nspds;
    st_n_total = n_total;
    st_leaves_per_ndwl = leaves_per_ndwl;
    st_leaves_per_nspd = leaves_per_nspd;
    st_leaves_per_deg = leaves_per_deg;
  }

let screen_of_tree (tree : screen_tree) ~n_rows =
  let n_geometry = ref 0 and n_page = ref 0 in
  let acc = ref [] in
  let f_rows = float_of_int n_rows in
  Array.iter
    (fun (ndwl, node) ->
      match node with
      | Ndwl_fail -> n_geometry := !n_geometry + tree.st_leaves_per_ndwl
      | Ndwl { wn_nspds } ->
          Array.iter
            (fun ndbl ->
              let vert = min ndbl 2 in
              let f_ndbl = float_of_int ndbl in
              Array.iteri
                (fun si nspd ->
                  match wn_nspds.(si) with
                  | Nspd_fail ->
                      n_geometry := !n_geometry + tree.st_leaves_per_nspd
                  | Nspd { nn_degs } -> (
                      match exact_div_f f_rows (f_ndbl *. nspd) with
                      | Some rows_sub when rows_sub >= 16 && rows_sub <= 4096
                        ->
                          Array.iter
                            (fun dn ->
                              match dn with
                              | Deg_fail ->
                                  n_geometry :=
                                    !n_geometry + tree.st_leaves_per_deg
                              | Deg
                                  {
                                    dn_deg;
                                    dn_page_ok;
                                    dn_tmpl;
                                    dn_pairs;
                                    dn_n_pairs;
                                  } ->
                                  n_geometry :=
                                    !n_geometry
                                    + (tree.st_leaves_per_deg - dn_n_pairs);
                                  if not dn_page_ok then
                                    n_page := !n_page + dn_n_pairs
                                  else
                                    let g =
                                      {
                                        dn_tmpl with
                                        g_rows_sub = rows_sub;
                                        g_vert = vert;
                                      }
                                    in
                                    List.iter
                                      (fun (ndsam_lev1, ndsam_lev2) ->
                                        acc :=
                                          ( {
                                              Org.ndwl;
                                              ndbl;
                                              nspd;
                                              deg_bl_mux = dn_deg;
                                              ndsam_lev1;
                                              ndsam_lev2;
                                            },
                                            g )
                                          :: !acc)
                                      dn_pairs)
                            nn_degs
                      | _ ->
                          n_geometry := !n_geometry + tree.st_leaves_per_nspd))
                tree.st_nspds)
            tree.st_ndbls)
    tree.st_ndwls;
  (List.rev !acc, tree.st_n_total, !n_geometry, !n_page)

let screen ?max_ndwl ?max_ndbl ~spec () =
  screen_of_tree
    (screen_tree ?max_ndwl ?max_ndbl ~spec ())
    ~n_rows:spec.Array_spec.n_rows

let staged_of_spec (spec : Array_spec.t) =
  Staged.make ~tech:spec.Array_spec.tech ~ram:spec.Array_spec.ram
    ~max_repeater_delay_penalty:spec.Array_spec.max_repeater_delay_penalty ()

(* The circuit solution of a mat is fully determined by the staged
   constants plus the geometry/mux tuple; candidates across the partition
   grid that share it share the mat solution bit-for-bit (the remaining
   spec fields — n_rows, output_bits, sleep_tx, repeater penalty — enter
   only at the classify screen or the bank level).

   The key is split into a per-spec salt string (cell kind, feature size,
   wire projection — hoisted out of the per-candidate loop so the sweep
   allocates no strings) and the geometry/mux tuple packed into a single
   tagged int.  The bit budget (13+14+2+2+4+5+5 = 45 bits) covers every
   screened geometry: rows <= 4096, cols <= 8192, horiz/vert <= 2,
   deg <= 8, ndsam <= 16 — packing is injective on screen survivors. *)

type mat_key = { mk_salt : string; mk_packed : int }

let fingerprint_salt ~spec =
  Printf.sprintf "%s|%h|%s"
    (Cell.ram_kind_to_string spec.Array_spec.ram)
    (Technology.feature_size spec.Array_spec.tech)
    (match Technology.wire_projection spec.Array_spec.tech with
    | Wire.Aggressive -> "a"
    | Wire.Conservative -> "c")

let fingerprint_key ~salt ~is_dram ~(org : Org.t) (g : geometry) =
  let deg = if is_dram then 1 else org.Org.deg_bl_mux in
  let k = g.g_rows_sub in
  let k = (k lsl 14) lor g.g_cols_sub in
  let k = (k lsl 2) lor g.g_horiz in
  let k = (k lsl 2) lor g.g_vert in
  let k = (k lsl 4) lor deg in
  let k = (k lsl 5) lor org.Org.ndsam_lev1 in
  let k = (k lsl 5) lor org.Org.ndsam_lev2 in
  { mk_salt = salt; mk_packed = k }

let fingerprint ~spec ~(org : Org.t) (g : geometry) =
  fingerprint_key
    ~salt:(fingerprint_salt ~spec)
    ~is_dram:(Cell.is_dram spec.Array_spec.ram)
    ~org g

(* The mat evaluation is split into its two expensive, highly shared
   sub-stages — the subarray (bitline RC + cell geometry, a function of
   (rows, cols, deg)) and the row decoder (a function of the subarray and
   (horiz, vert)) — plus the closed-form combination of both with the
   staged sense amp and output muxes.  The scalar path instantiates the
   sub-stages directly; the SoA kernel supplies memoizing providers so
   that a 2000-survivor sweep solves each distinct subarray (~300) and
   decoder (~125) once.  Both paths run the exact same expressions on the
   exact same float inputs, so they are bit-identical. *)

let subarray_of ~(staged : Staged.t) ~rows ~cols ~deg =
  (* Sense amplifiers first (their input loading feeds the bitline). *)
  let sense = Staged.sense staged ~deg_bl_mux:deg in
  Subarray.make ~tech:staged.Staged.tech ~ram:staged.Staged.ram ~rows ~cols
    ~c_sense_input:(sense.Sense_amp.c_input /. float_of_int deg)

let decoder_of ~(staged : Staged.t) (subarray : Subarray.t) ~horiz ~vert =
  (* Row decoder: one strip serving all wordlines of the mat; the selected
     wordline spans the horizontal subarrays. *)
  let c_line = float_of_int horiz *. subarray.Subarray.c_wordline in
  let r_line = float_of_int horiz *. subarray.Subarray.r_wordline in
  Decoder.decoder ~periph:staged.Staged.periph ~area:staged.Staged.area
    ~feature:staged.Staged.feature ~wire:staged.Staged.wire_local
    ~n_select:(subarray.Subarray.rows * vert)
    ~strip_length:(float_of_int vert *. subarray.Subarray.height)
    ~c_line ~r_line ~v_line_swing:staged.Staged.cell.Cell.vpp ()

let of_parts ~(staged : Staged.t) ~(org : Org.t) (g : geometry)
    ~(subarray : Subarray.t) ~(decoder : Decoder.t) =
  let { Staged.cell; periph; feature; is_dram; _ } = staged in
  let { g_rows_sub = rows_sub; g_cols_sub = cols_sub; g_horiz = horiz;
        g_vert = vert; g_out_bits = out_bits; g_sensed = sensed;
        g_sensed_per_access = _ } =
    g
  in
  let deg = if is_dram then 1 else org.Org.deg_bl_mux in
  let sense = Staged.sense staged ~deg_bl_mux:deg in
  let n_subarrays = horiz * vert in
  let active_cols = horiz * cols_sub in
  let n_sense_amps = sensed in
  let n_wordlines = rows_sub * vert in
  let t_row_path = decoder.Decoder.stage.Stage.delay in
  let t_wordline = decoder.Decoder.t_gate_drive +. decoder.Decoder.t_line in
  (* Bitline and sensing. *)
  let vdd_p = periph.Device.vdd in
  let t_bitline, t_sense, t_precharge, t_restore =
    match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
    | Some bl, None ->
        ( bl.Bitline.t_read_develop,
          Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.swing,
          bl.Bitline.t_precharge,
          0. )
    | None, Some bl ->
        ( bl.Bitline.t_charge_share,
          Cacti_circuit.Sense_amp.amplify sense ~signal:bl.Bitline.signal,
          bl.Bitline.t_precharge,
          bl.Bitline.t_restore )
    | _ -> assert false
  in
  (* Column path: bitline mux (SRAM), then the two Ndsam levels — all from
     the staged tables (same pure expressions as inline construction). *)
  let mux_bl = Staged.mux_bl staged ~deg_bl_mux:deg in
  let mux1 = Staged.mux1 staged ~ndsam:org.Org.ndsam_lev1 in
  let mux2 = Staged.mux2 staged ~ndsam:org.Org.ndsam_lev2 in
  let t_column_out =
    (if deg > 1 then mux_bl.Mux.delay else 0.)
    +. mux1.Mux.delay +. mux2.Mux.delay
  in
  (* Per-mat support circuitry that CACTI folds into every mat: write
     drivers on the output columns, address latches/receivers and the
     self-timed control block.  Modeled as inverter-equivalents. *)
  let ctl_inv = staged.Staged.ctl_inv in
  let wr_drv = staged.Staged.wr_drv in
  let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
  let control_area =
    (float_of_int n_ctl *. ctl_inv.Gate.area)
    +. (float_of_int out_bits *. 2. *. wr_drv.Gate.area)
  in
  let control_leakage =
    (float_of_int n_ctl *. ctl_inv.Gate.leakage)
    +. (float_of_int out_bits *. 2. *. wr_drv.Gate.leakage)
  in
  let control_energy =
    float_of_int n_ctl *. 0.25
    *. Gate.switching_energy ctl_inv ~c_load:ctl_inv.Gate.c_in
  in
  (* Energies. *)
  let e_bl_activate_per_col, e_bl_write_per_col, e_pre_per_col =
    match (subarray.Subarray.sram_bl, subarray.Subarray.dram_bl) with
    | Some bl, None ->
        (bl.Bitline.e_read_per_column, bl.Bitline.e_write_per_column, 0.)
    | None, Some bl ->
        ( bl.Bitline.e_activate_per_column,
          bl.Bitline.e_write_per_column,
          bl.Bitline.e_precharge_per_column )
    | _ -> assert false
  in
  let sensed_per_access = if is_dram then active_cols else sensed in
  let e_row_activate =
    decoder.Decoder.stage.Stage.energy +. control_energy
    +. (float_of_int active_cols *. e_bl_activate_per_col)
    +. (float_of_int sensed_per_access *. sense.Sense_amp.energy)
  in
  let e_column_read =
    float_of_int out_bits
    *. ((if deg > 1 then mux_bl.Mux.e_per_output_bit else 0.)
       +. mux1.Mux.e_per_output_bit +. mux2.Mux.e_per_output_bit
       +. (0.5 *. 30. *. feature *. periph.Device.c_gate *. vdd_p *. vdd_p))
  in
  let e_column_write = float_of_int out_bits *. e_bl_write_per_col in
  let e_precharge = float_of_int active_cols *. e_pre_per_col in
  (* Leakage. *)
  let n_cells = rows_sub * vert * cols_sub * horiz in
  let leakage_cells =
    float_of_int n_cells *. cell.Cell.i_cell_leak *. cell.Cell.vdd_cell
  in
  let n_sa_total =
    if is_dram then active_cols * vert / vert else n_sense_amps
  in
  let leakage_periph =
    decoder.Decoder.stage.Stage.leakage
    +. (float_of_int n_sa_total *. sense.Sense_amp.leakage)
    +. (float_of_int out_bits
       *. (mux1.Mux.leakage +. mux2.Mux.leakage
          +. if deg > 1 then mux_bl.Mux.leakage else 0.))
  in
  let leakage = leakage_cells +. leakage_periph +. control_leakage in
  (* Geometry: decoder strip between the subarray halves; sense strip
     below. *)
  let core_w = float_of_int horiz *. subarray.Subarray.width in
  let core_h = float_of_int vert *. subarray.Subarray.height in
  let dec_strip_w = decoder.Decoder.stage.Stage.area /. core_h in
  let sa_area =
    (float_of_int n_sa_total *. sense.Sense_amp.area)
    +. (float_of_int out_bits
       *. (mux1.Mux.area_per_output_bit +. mux2.Mux.area_per_output_bit))
    +. float_of_int sensed
       *.
       (if deg > 1 then mux_bl.Mux.area_per_output_bit /. float_of_int deg
        else 0.)
  in
  let sa_strip_h = (sa_area +. control_area) /. core_w in
  let width = core_w +. dec_strip_w in
  let height = core_h +. sa_strip_h in
  {
    subarray;
    n_subarrays;
    horiz_subarrays = horiz;
    width;
    height;
    area = width *. height;
    decoder;
    sense;
    n_sense_amps = n_sa_total;
    active_cols;
    sensed_bits = sensed_per_access;
    out_bits;
    t_row_path;
    t_wordline;
    t_bitline;
    t_sense;
    t_column_out;
    t_precharge;
    t_restore;
    e_row_activate;
    e_column_read;
    e_column_write;
    e_precharge;
    leakage;
    leakage_cells;
  }

let eval_geometry ~(staged : Staged.t) ~sub_of ~dec_of ~(org : Org.t)
    (g : geometry) =
  let deg = if staged.Staged.is_dram then 1 else org.Org.deg_bl_mux in
  let subarray = sub_of ~rows:g.g_rows_sub ~cols:g.g_cols_sub ~deg in
  if not (Subarray.viable subarray) then None
  else
    let decoder = dec_of subarray ~horiz:g.g_horiz ~vert:g.g_vert in
    Some (of_parts ~staged ~org g ~subarray ~decoder)

let make_staged ~(staged : Staged.t) ~spec ~org () =
  match geometry ~spec ~org with
  | None -> None
  | Some g ->
      eval_geometry ~staged
        ~sub_of:(fun ~rows ~cols ~deg -> subarray_of ~staged ~rows ~cols ~deg)
        ~dec_of:(fun sub ~horiz ~vert -> decoder_of ~staged sub ~horiz ~vert)
        ~org g

let make ~spec ~org () = make_staged ~staged:(staged_of_spec spec) ~spec ~org ()

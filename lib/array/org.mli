(** Array-partitioning parameters — the design space CACTI-D's optimizer
    walks.

    A bank is divided into [ndwl × ndbl] subarrays (grouped four to a mat);
    [nspd] stretches how many logical rows share a physical wordline; the
    column path is reduced by a bitline mux of degree [deg_bl_mux] and two
    levels of sense-amp output muxing. *)

type t = {
  ndwl : int;  (** wordline divisions (subarray columns across the bank) *)
  ndbl : int;  (** bitline divisions (subarray rows down the bank) *)
  nspd : float;  (** row aspect scaling; power of two in [1/8, 8] *)
  deg_bl_mux : int;  (** bitline pairs sharing one sense amp *)
  ndsam_lev1 : int;  (** sense-amp output mux, first level *)
  ndsam_lev2 : int;  (** sense-amp output mux, second level *)
}

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val mats_x : t -> int
(** Mats across: [max 1 (ndwl/2)]. *)

val mats_y : t -> int
val n_mats : t -> int

val subarrays_per_mat : t -> int
(** 4 in the interior (2×2), fewer for degenerate ndwl/ndbl = 1. *)

val candidates :
  ?max_ndwl:int -> ?max_ndbl:int -> dram:bool -> unit -> t list
(** The enumeration grid, in deterministic nested order (ndwl, ndbl, nspd,
    deg_bl_mux, ndsam_lev1, ndsam_lev2 — outermost first).  For DRAM
    arrays [deg_bl_mux] is fixed at 1 — every folded bitline pair owns a
    sense amplifier, because an ACTIVATE must latch the whole row for
    writeback.  The default 64×64 grids are cached and shared (the list is
    immutable). *)

(** {1 Grid axes}

    The individual dimensions of {!candidates}, exposed so sweeps can walk
    the grid hierarchically (hoisting checks that depend only on outer
    dimensions) while preserving exactly the {!candidates} order. *)

val pow2s : int -> int list
(** [1; 2; 4; ...] up to and including the bound (if itself a power). *)

val nspds : float list
val bl_muxes : dram:bool -> int list
val ndsams : int list

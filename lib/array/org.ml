type t = {
  ndwl : int;
  ndbl : int;
  nspd : float;
  deg_bl_mux : int;
  ndsam_lev1 : int;
  ndsam_lev2 : int;
}

let pp ppf t =
  Format.fprintf ppf
    "Ndwl=%d Ndbl=%d Nspd=%g BLmux=%d Ndsam=%dx%d" t.ndwl t.ndbl t.nspd
    t.deg_bl_mux t.ndsam_lev1 t.ndsam_lev2

let to_string t = Format.asprintf "%a" pp t

let mats_x t = max 1 (t.ndwl / 2)
let mats_y t = max 1 (t.ndbl / 2)
let n_mats t = mats_x t * mats_y t
let subarrays_per_mat t = min t.ndwl 2 * min t.ndbl 2

let pow2s upto =
  let rec go v = if v > upto then [] else v :: go (v * 2) in
  go 1

let nspds = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]
let bl_muxes ~dram = if dram then [ 1 ] else [ 1; 2; 4; 8 ]
let ndsams = [ 1; 2; 3; 4; 6; 8; 12; 16 ]

let build_candidates ~max_ndwl ~max_ndbl ~dram =
  let bl_muxes = bl_muxes ~dram in
  List.concat_map
    (fun ndwl ->
      List.concat_map
        (fun ndbl ->
          List.concat_map
            (fun nspd ->
              List.concat_map
                (fun deg_bl_mux ->
                  List.concat_map
                    (fun ndsam_lev1 ->
                      List.map
                        (fun ndsam_lev2 ->
                          {
                            ndwl;
                            ndbl;
                            nspd;
                            deg_bl_mux;
                            ndsam_lev1;
                            ndsam_lev2;
                          })
                        ndsams)
                    ndsams)
                bl_muxes)
            nspds)
        (pow2s max_ndbl))
    (pow2s max_ndwl)

(* The default 64x64 grids are pure constants rebuilt for every sweep;
   building one allocates ~60k records, which is measurable against the
   staged sweep cost.  Cache them (mutex-guarded: sweeps may run
   concurrently from several domains).  The lists are immutable, so
   sharing one across callers is safe. *)
let grid_lock = Mutex.create ()
let grid_sram = ref None
let grid_dram = ref None

let candidates ?(max_ndwl = 64) ?(max_ndbl = 64) ~dram () =
  if max_ndwl = 64 && max_ndbl = 64 then
    let cell = if dram then grid_dram else grid_sram in
    Mutex.protect grid_lock (fun () ->
        match !cell with
        | Some l -> l
        | None ->
            let l = build_candidates ~max_ndwl ~max_ndbl ~dram in
            cell := Some l;
            l)
  else build_candidates ~max_ndwl ~max_ndbl ~dram

(** A mat: up to 2×2 subarrays around a central row-decode strip, with
    pitch-matched sense amplifiers and output muxing along the bottom.

    The mat is where the row path (predecode → decode → wordline), the
    column path (bitline → sense amp → output muxes) and the local strips'
    area live.  The bank composes mats with an H-tree. *)

type t = {
  subarray : Subarray.t;
  n_subarrays : int;  (** 1, 2 or 4 *)
  horiz_subarrays : int;  (** 1 or 2: subarrays sharing the wordline *)
  width : float;
  height : float;
  area : float;
  decoder : Cacti_circuit.Decoder.t;
  sense : Cacti_circuit.Sense_amp.t;
  n_sense_amps : int;  (** per mat *)
  active_cols : int;  (** columns whose bitlines swing on an access *)
  sensed_bits : int;  (** columns actually sensed per access *)
  out_bits : int;  (** bits the mat delivers after Ndsam muxing *)
  t_row_path : float;  (** s: predec + decode + wordline *)
  t_wordline : float;  (** s: wordline component only *)
  t_bitline : float;  (** s: develop (SRAM) / charge-share (DRAM) *)
  t_sense : float;
  t_column_out : float;  (** s: mux traversal to the mat port *)
  t_precharge : float;
  t_restore : float;  (** DRAM writeback; 0 for SRAM *)
  e_row_activate : float;  (** J: decode + wordline + bitlines + sense *)
  e_column_read : float;  (** J: mux path + output for [out_bits] *)
  e_column_write : float;  (** J: driving writes for [out_bits] columns *)
  e_precharge : float;
  leakage : float;  (** W: mat periphery + cells *)
  leakage_cells : float;  (** W: cell portion (sleep-gateable) *)
}

type geometry = {
  g_rows_sub : int;  (** rows per subarray *)
  g_cols_sub : int;  (** columns per subarray *)
  g_horiz : int;  (** subarrays sharing the wordline (1 or 2) *)
  g_vert : int;  (** subarrays stacked per mat (1 or 2) *)
  g_out_bits : int;  (** bits per mat after Ndsam muxing *)
  g_sensed : int;  (** sense amps per mat *)
  g_sensed_per_access : int;  (** columns sensed per access *)
}

val classify :
  spec:Array_spec.t -> org:Org.t -> (geometry, [ `Geometry | `Page ]) result
(** The cheap, purely arithmetic part of {!make}: integer tiling,
    subarray-dimension bounds, mux-chain/output-width matching and the
    main-memory page constraint.  [Error `Page] when only the page
    constraint fails, [Error `Geometry] for the structural screens — the
    enumeration uses the distinction to build its rejection histogram before
    any circuit modeling. *)

val geometry : spec:Array_spec.t -> org:Org.t -> geometry option
(** [Result.to_option (classify ~spec ~org)]: [None] exactly when {!make}
    would return [None] for a structural reason. *)

type screen_tree
(** The [n_rows]-independent part of the hierarchical tiling screen: every
    check except the rows-per-subarray division depends only on
    [row_bits], [output_bits], [page_bits], the cell kind and the grid
    bounds, so it is evaluated once into this tree and shared across
    specs that differ only in size or technology node. *)

val screen_tree :
  ?max_ndwl:int -> ?max_ndbl:int -> spec:Array_spec.t -> unit -> screen_tree
(** Build the rows-independent screen tree for a spec (defaults: 64x64
    partition grid, matching {!screen}). *)

val screen_of_tree :
  screen_tree -> n_rows:int -> (Org.t * geometry) list * int * int * int
(** Instantiate a screen tree for a row count:
    [(survivors, n_total, n_geometry, n_page)], bit-identical (same
    survivors in the same order, same counts) to {!screen} on the spec the
    tree was built from with [n_rows] substituted. *)

val screen_key :
  ?max_ndwl:int -> ?max_ndbl:int -> spec:Array_spec.t -> unit -> string
(** Identity of a {!screen_tree}: two specs with equal keys (and equal
    grid bounds) produce equal trees.  Excludes [n_rows] — that axis is
    resolved by {!screen_of_tree} — and the technology node, which the
    purely arithmetic screen never reads. *)

val screen :
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  spec:Array_spec.t ->
  unit ->
  (Org.t * geometry) list * int * int * int
(** Hierarchical tiling screen over the whole partition grid:
    [(survivors, n_total, n_geometry, n_page)].  Equivalent to running
    {!classify} on every element of [Org.candidates] — same survivor list
    (in the same order, paired with their geometry) and same rejection
    counts — but walks the grid as nested loops, hoisting each check to
    the outermost level whose dimensions determine it and bulk-counting
    pruned subtrees, so the cost is proportional to the interior of the
    grid rather than its ~63k leaves.  Implemented as
    [screen_of_tree (screen_tree ...) ~n_rows:spec.n_rows]. *)

val make : spec:Array_spec.t -> org:Org.t -> unit -> t option
(** [None] when the organization is geometrically or electrically invalid
    for the spec (non-integer tiling, DRAM signal too small, mux chain not
    matching the output width, etc.).  Equivalent to {!make_staged} with
    freshly staged constants. *)

val staged_of_spec : Array_spec.t -> Cacti_circuit.Staged.t
(** The staged per-spec constants ({!Cacti_circuit.Staged.t}) for this
    spec's technology, cell type and repeater delay penalty. *)

val make_staged :
  staged:Cacti_circuit.Staged.t ->
  spec:Array_spec.t ->
  org:Org.t ->
  unit ->
  t option
(** {!make} against precomputed staged constants.  [staged] must be
    [staged_of_spec spec] (or an equal record); the result is then
    bit-identical to [make ~spec ~org ()]. *)

val eval_geometry :
  staged:Cacti_circuit.Staged.t ->
  sub_of:(rows:int -> cols:int -> deg:int -> Subarray.t) ->
  dec_of:
    (Subarray.t -> horiz:int -> vert:int -> Cacti_circuit.Decoder.t) ->
  org:Org.t ->
  geometry ->
  t option
(** Evaluate an already-screened geometry through caller-supplied
    sub-stage providers.  [sub_of] must behave like {!subarray_of} and
    [dec_of] like {!decoder_of} (e.g. memoized wrappers); the result is
    then bit-identical to {!make_staged}.  [None] exactly when the
    subarray is electrically nonviable. *)

val subarray_of :
  staged:Cacti_circuit.Staged.t -> rows:int -> cols:int -> deg:int ->
  Subarray.t
(** The subarray sub-stage of {!make_staged}: bitline RC and cell
    geometry for a (rows, cols, effective bitline-mux degree) tuple. *)

val decoder_of :
  staged:Cacti_circuit.Staged.t ->
  Subarray.t ->
  horiz:int ->
  vert:int ->
  Cacti_circuit.Decoder.t
(** The row-decoder sub-stage of {!make_staged}: depends only on the
    subarray and the (horiz, vert) mat tiling — not on the bitline-mux
    degree, since none of its subarray inputs do. *)

type mat_key = { mk_salt : string; mk_packed : int }
(** Memoization key of the mat solution: a per-spec salt (cell type,
    feature size, wire projection) plus the geometry/mux tuple packed
    into one int.  Candidates across the partition grid (and across specs
    on the same node) that share a key share the mat solution
    bit-for-bit.  Packing is injective for geometries produced by the
    screen (which bounds every field). *)

val fingerprint_salt : spec:Array_spec.t -> string
(** The per-spec half of {!mat_key} — hoist it out of per-candidate
    loops; building a key from a precomputed salt allocates no strings. *)

val fingerprint_key :
  salt:string -> is_dram:bool -> org:Org.t -> geometry -> mat_key
(** Assemble a {!mat_key} from a precomputed {!fingerprint_salt}. *)

val fingerprint : spec:Array_spec.t -> org:Org.t -> geometry -> mat_key
(** [fingerprint_key ~salt:(fingerprint_salt ~spec) ...]. *)

(** A mat: up to 2×2 subarrays around a central row-decode strip, with
    pitch-matched sense amplifiers and output muxing along the bottom.

    The mat is where the row path (predecode → decode → wordline), the
    column path (bitline → sense amp → output muxes) and the local strips'
    area live.  The bank composes mats with an H-tree. *)

type t = {
  subarray : Subarray.t;
  n_subarrays : int;  (** 1, 2 or 4 *)
  horiz_subarrays : int;  (** 1 or 2: subarrays sharing the wordline *)
  width : float;
  height : float;
  area : float;
  decoder : Cacti_circuit.Decoder.t;
  sense : Cacti_circuit.Sense_amp.t;
  n_sense_amps : int;  (** per mat *)
  active_cols : int;  (** columns whose bitlines swing on an access *)
  sensed_bits : int;  (** columns actually sensed per access *)
  out_bits : int;  (** bits the mat delivers after Ndsam muxing *)
  t_row_path : float;  (** s: predec + decode + wordline *)
  t_wordline : float;  (** s: wordline component only *)
  t_bitline : float;  (** s: develop (SRAM) / charge-share (DRAM) *)
  t_sense : float;
  t_column_out : float;  (** s: mux traversal to the mat port *)
  t_precharge : float;
  t_restore : float;  (** DRAM writeback; 0 for SRAM *)
  e_row_activate : float;  (** J: decode + wordline + bitlines + sense *)
  e_column_read : float;  (** J: mux path + output for [out_bits] *)
  e_column_write : float;  (** J: driving writes for [out_bits] columns *)
  e_precharge : float;
  leakage : float;  (** W: mat periphery + cells *)
  leakage_cells : float;  (** W: cell portion (sleep-gateable) *)
}

type geometry = {
  g_rows_sub : int;  (** rows per subarray *)
  g_cols_sub : int;  (** columns per subarray *)
  g_horiz : int;  (** subarrays sharing the wordline (1 or 2) *)
  g_vert : int;  (** subarrays stacked per mat (1 or 2) *)
  g_out_bits : int;  (** bits per mat after Ndsam muxing *)
  g_sensed : int;  (** sense amps per mat *)
  g_sensed_per_access : int;  (** columns sensed per access *)
}

val classify :
  spec:Array_spec.t -> org:Org.t -> (geometry, [ `Geometry | `Page ]) result
(** The cheap, purely arithmetic part of {!make}: integer tiling,
    subarray-dimension bounds, mux-chain/output-width matching and the
    main-memory page constraint.  [Error `Page] when only the page
    constraint fails, [Error `Geometry] for the structural screens — the
    enumeration uses the distinction to build its rejection histogram before
    any circuit modeling. *)

val geometry : spec:Array_spec.t -> org:Org.t -> geometry option
(** [Result.to_option (classify ~spec ~org)]: [None] exactly when {!make}
    would return [None] for a structural reason. *)

val screen :
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  spec:Array_spec.t ->
  unit ->
  (Org.t * geometry) list * int * int * int
(** Hierarchical tiling screen over the whole partition grid:
    [(survivors, n_total, n_geometry, n_page)].  Equivalent to running
    {!classify} on every element of [Org.candidates] — same survivor list
    (in the same order, paired with their geometry) and same rejection
    counts — but walks the grid as nested loops, hoisting each check to
    the outermost level whose dimensions determine it and bulk-counting
    pruned subtrees, so the cost is proportional to the interior of the
    grid rather than its ~63k leaves. *)

val make : spec:Array_spec.t -> org:Org.t -> unit -> t option
(** [None] when the organization is geometrically or electrically invalid
    for the spec (non-integer tiling, DRAM signal too small, mux chain not
    matching the output width, etc.).  Equivalent to {!make_staged} with
    freshly staged constants. *)

val staged_of_spec : Array_spec.t -> Cacti_circuit.Staged.t
(** The staged per-spec constants ({!Cacti_circuit.Staged.t}) for this
    spec's technology, cell type and repeater delay penalty. *)

val make_staged :
  staged:Cacti_circuit.Staged.t ->
  spec:Array_spec.t ->
  org:Org.t ->
  unit ->
  t option
(** {!make} against precomputed staged constants.  [staged] must be
    [staged_of_spec spec] (or an equal record); the result is then
    bit-identical to [make ~spec ~org ()]. *)

val fingerprint : spec:Array_spec.t -> org:Org.t -> geometry -> string
(** Memoization key of the mat solution: the cell type, feature size, wire
    projection and the geometry/mux tuple that fully determine
    {!make_staged}'s result.  Candidates across the partition grid (and
    across specs on the same node) that share a fingerprint share the mat
    solution bit-for-bit. *)

open Cacti_tech
open Cacti_circuit

type dram_timing = {
  t_rcd : float;
  t_cas : float;
  t_ras : float;
  t_rp : float;
  t_rc : float;
  t_rrd : float;
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;
  width : float;
  height : float;
  area : float;
  area_efficiency : float;
  t_access : float;
  t_random_cycle : float;
  t_interleave : float;
  dram : dram_timing option;
  e_read : float;
  e_write : float;
  e_activate : float;
  e_precharge : float;
  p_leakage : float;
  p_refresh : float;
  n_subbanks : int;
  pipeline_stages : int;
}

(* The bank-level model on top of a solved mat: H-tree distribution,
   timings, energies, leakage, refresh and area.  Pure float math against
   the staged constants — no circuit design happens here. *)
let assemble ~(staged : Staged.t) ~spec ~(org : Org.t) (mat : Mat.t) =
  let { Array_spec.output_bits; _ } = spec in
  let is_dram = staged.Staged.is_dram in
  let cell = staged.Staged.cell in
  let mats_x = Org.mats_x org and mats_y = Org.mats_y org in
  let n_mats = mats_x * mats_y in
  (* The page constraint is part of [Mat.geometry], so any surviving
     mat already satisfies it. *)
  let bank_w = float_of_int mats_x *. mat.Mat.width in
  let bank_h = float_of_int mats_y *. mat.Mat.height in
  let repeater = staged.Staged.repeater in
  let htree = Htree.plan ~repeater ~bank_width:bank_w ~bank_height:bank_h in
  let addr_bits = Array_spec.addr_bits spec + 8 in
  let addr_link = Htree.link htree ~bits:addr_bits ~activity:1.0 () in
  let data_out_link = Htree.link htree ~bits:output_bits ~activity:0.75 () in
  let data_in_link = Htree.link htree ~bits:output_bits ~activity:0.75 () in
  (* Port receivers/drivers at the bank boundary. *)
  let t_port = staged.Staged.t_port in
  let t_htree_in = addr_link.Stage.delay +. t_port in
  let t_htree_out = data_out_link.Stage.delay +. t_port in
  let t_access =
    t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
    +. mat.Mat.t_sense +. mat.Mat.t_column_out +. t_htree_out
  in
  let t_local_cycle =
    mat.Mat.t_wordline +. mat.Mat.t_bitline +. mat.Mat.t_sense
    +. mat.Mat.t_restore +. mat.Mat.t_precharge
  in
  let t_random_cycle = t_local_cycle in
  let t_htree_stage = (t_htree_in +. t_htree_out) /. 6. in
  let t_interleave =
    max
      (mat.Mat.t_bitline +. mat.Mat.t_sense +. mat.Mat.t_column_out)
      t_htree_stage
  in
  let active_mats = mats_x in
  let fam = float_of_int active_mats in
  (* Energies. *)
  let e_activate =
    addr_link.Stage.energy +. (fam *. mat.Mat.e_row_activate)
  in
  let e_col_read =
    (fam *. mat.Mat.e_column_read) +. data_out_link.Stage.energy
  in
  let e_col_write =
    (fam *. mat.Mat.e_column_write) +. data_in_link.Stage.energy
  in
  let e_precharge = fam *. mat.Mat.e_precharge in
  let e_read, e_write =
    if is_dram then
      (* SRAM-like interface with auto-precharge: a random read costs
         ACTIVATE + column read + PRECHARGE. *)
      ( e_activate +. e_col_read +. e_precharge,
        e_activate +. e_col_write +. e_precharge )
    else (e_activate +. e_col_read, e_activate +. e_col_write)
  in
  (* Leakage: mats (sleep transistors halve the non-active ones) +
     H-tree repeaters. *)
  let sleep_factor =
    if spec.Array_spec.sleep_tx then
      (fam +. (float_of_int (n_mats - active_mats) *. 0.5))
      /. float_of_int n_mats
    else 1.0
  in
  let p_leakage =
    (float_of_int n_mats *. mat.Mat.leakage *. sleep_factor)
    +. addr_link.Stage.leakage +. data_out_link.Stage.leakage
    +. data_in_link.Stage.leakage
  in
  (* Refresh. *)
  let p_refresh =
    if not is_dram then 0.
    else
      let wordlines_per_mat =
        mat.Mat.subarray.Subarray.rows
        * (mat.Mat.n_subarrays / mat.Mat.horiz_subarrays)
      in
      let n_wordlines = wordlines_per_mat * mats_y in
      (* Burst refresh shares command/decode overhead across rows and
         skips the column circuitry entirely. *)
      let refresh_efficiency = 0.75 in
      let e_per_refresh =
        refresh_efficiency
        *. (fam *. (mat.Mat.e_row_activate +. mat.Mat.e_precharge))
      in
      float_of_int n_wordlines *. e_per_refresh /. cell.Cell.retention_time
  in
  (* DRAM interface timings. *)
  let dram =
    if not is_dram then None
    else
      let t_rcd =
        t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
        +. mat.Mat.t_sense
      in
      let t_cas = mat.Mat.t_column_out +. t_htree_out in
      let t_ras =
        mat.Mat.t_row_path +. mat.Mat.t_bitline +. mat.Mat.t_sense
        +. mat.Mat.t_restore
      in
      let t_rp = mat.Mat.t_precharge +. (0.3 *. mat.Mat.t_wordline) in
      Some
        {
          t_rcd;
          t_cas;
          t_ras;
          t_rp;
          t_rc = t_ras +. t_rp;
          t_rrd = t_interleave;
        }
  in
  (* Area. *)
  let htree_silicon =
    addr_link.Stage.area +. data_out_link.Stage.area
    +. data_in_link.Stage.area
  in
  let area = ((bank_w *. bank_h) +. htree_silicon) *. 1.08 in
  let cell_area_total =
    float_of_int n_mats
    *. float_of_int mat.Mat.n_subarrays
    *. Subarray.cell_area mat.Mat.subarray
  in
  {
    spec;
    org;
    mat;
    n_mats;
    active_mats;
    width = bank_w;
    height = bank_h;
    area;
    area_efficiency = cell_area_total /. area;
    t_access;
    t_random_cycle;
    t_interleave;
    dram;
    e_read;
    e_write;
    e_activate;
    e_precharge;
    p_leakage;
    p_refresh;
    n_subbanks = mats_y;
    pipeline_stages = mat.Mat.decoder.Decoder.n_stages + 3;
  }

let evaluate_staged ~staged ~spec ~org =
  match Mat.make_staged ~staged ~spec ~org () with
  | None -> None
  | Some mat -> Some (assemble ~staged ~spec ~org mat)

let evaluate ~spec ~org =
  evaluate_staged ~staged:(Mat.staged_of_spec spec) ~spec ~org

(* Cheap per-organization lower bounds on the final bank metrics, computed
   from the geometry alone (before any circuit modeling).  Each is provably
   a lower bound of the corresponding [assemble] output:

   - area: the cell matrix itself (constant across organizations) plus the
     per-mat sense amplifiers and control block, whose replication grows
     with the mat count and the sensing width.  The mat folds both into
     its sense strip ([sa_area + control_area], every other strip term
     nonnegative) and the bank applies the same 1.08 wiring overhead, so
     all three terms are included in the real area.  The sense-amp term is
     what gives the bound its discriminating power: the cell matrix alone
     is the same for every organization (width x height telescopes to
     [row_bits * n_rows] cells), while lightly-muxed organizations carry
     an amplifier per column.
   - time: the H-tree in + out traversal plus the distributed-RC flight
     terms of the wordline and the bitline.  The bank is at least
     [mats_x * horiz * cols_sub] cells wide and [mats_y * vert * rows_sub]
     cells tall (a subarray is exactly its cell matrix; mat strips and
     H-tree silicon only add to that), the worst-case H-tree path is
     (W + H)/2 in each direction at [delay_per_m] per meter, plus the two
     3-FO4 ports.  [t_row_path >= Decoder.t_line = 0.38 * r_line * c_line]
     with the line RC exactly [horiz * cols_sub] cell pitches of wordline
     wire; the SRAM [t_read_develop >= 0.38 * r_bl * c_bl] (the
     cell-current development term and the sense-amp input load are
     nonnegative) and the DRAM [t_charge_share] is monotone in the bitline
     capacitance, so evaluating it at [c_sense_input = 0] bounds it from
     below.  These quadratic terms are what catch the slow candidates: a
     degenerate organization is slow because of its mile-long wordlines
     or bitlines, not its H-tree.
   - energy (read): the address + data-out H-tree link energy over the same
     minimum span, plus one sense-amp firing per sensed column (and, for
     DRAM, the storage-cell restore charge on every active column); all
     other mat energies are nonnegative.

   The 0.999 factor keeps each bound strictly conservative against float
   rounding, so pruning on it can never drop a candidate that would have
   tied or beaten the eventual winner. *)
type bounds = { b_area : float; b_time : float; b_energy : float }

let lower_bounds ~(staged : Staged.t) spec =
  let { Array_spec.n_rows; row_bits; output_bits; _ } = spec in
  let cell_w = staged.Staged.cell_w and cell_h = staged.Staged.cell_h in
  let ctl_inv = staged.Staged.ctl_inv and wr_drv = staged.Staged.wr_drv in
  let rep = staged.Staged.repeater in
  let t_port = staged.Staged.t_port in
  let cells_total =
    float_of_int n_rows *. float_of_int row_bits *. cell_w *. cell_h
  in
  let energy_bits =
    float_of_int (Array_spec.addr_bits spec + 8)
    +. (0.75 *. float_of_int output_bits)
  in
  let is_dram = staged.Staged.is_dram in
  let cell = staged.Staged.cell in
  let wl_rc = cell.Cell.r_wl_per_cell *. cell.Cell.c_wl_per_cell in
  let r_bl = cell.Cell.r_bl_per_cell and c_bl = cell.Cell.c_bl_per_cell in
  let vdd_cell = cell.Cell.vdd_cell in
  (* DRAM charge-share constants (see [Bitline.dram]). *)
  let r_access = 0.15 *. vdd_cell /. cell.Cell.i_cell_on in
  let cs = cell.Cell.storage_cap in
  let e_restore_per_col = 0.75 *. cs *. vdd_cell *. vdd_cell in
  fun (org : Org.t) (g : Mat.geometry) ->
    let n_wordlines = g.Mat.g_rows_sub * g.Mat.g_vert in
    let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
    let control =
      (float_of_int n_ctl *. ctl_inv.Gate.area)
      +. (float_of_int g.Mat.g_out_bits *. 2. *. wr_drv.Gate.area)
    in
    let eff_deg = if is_dram then 1 else org.Org.deg_bl_mux in
    let n_sa =
      if is_dram then g.Mat.g_horiz * g.Mat.g_cols_sub else g.Mat.g_sensed
    in
    let sa_area =
      float_of_int n_sa
      *. (Staged.sense staged ~deg_bl_mux:eff_deg).Sense_amp.area
    in
    let b_area =
      0.999 *. 1.08
      *. (cells_total
         +. (float_of_int (Org.n_mats org) *. (control +. sa_area)))
    in
    let w_lb =
      float_of_int (Org.mats_x org * g.Mat.g_horiz * g.Mat.g_cols_sub)
      *. cell_w
    in
    let h_lb =
      float_of_int (Org.mats_y org * g.Mat.g_vert * g.Mat.g_rows_sub)
      *. cell_h
    in
    let span = w_lb +. h_lb in
    (* Wordline flight: exactly [Decoder.t_line] for this line length. *)
    let line_cells = float_of_int (g.Mat.g_horiz * g.Mat.g_cols_sub) in
    let t_wordline_lb = 0.38 *. line_cells *. line_cells *. wl_rc in
    (* Bitline: the distributed-RC floor of develop / charge-share. *)
    let rows = float_of_int g.Mat.g_rows_sub in
    let t_bitline_lb =
      if is_dram then
        let c_line = rows *. c_bl in
        let c_eq = cs *. c_line /. (cs +. c_line) in
        2.3 *. (r_access +. (0.5 *. rows *. r_bl)) *. c_eq
      else 0.38 *. rows *. rows *. r_bl *. c_bl
    in
    let b_time =
      0.999
      *. ((rep.Repeater.delay_per_m *. span) +. (2. *. t_port)
         +. t_wordline_lb +. t_bitline_lb)
    in
    let sense_energy =
      (Staged.sense staged ~deg_bl_mux:eff_deg).Sense_amp.energy
    in
    let fam = float_of_int (Org.mats_x org) in
    let e_mat_lb =
      (float_of_int g.Mat.g_sensed_per_access *. sense_energy)
      +.
      if is_dram then
        float_of_int (g.Mat.g_horiz * g.Mat.g_cols_sub) *. e_restore_per_col
      else 0.
    in
    let b_energy =
      0.999
      *. ((energy_bits *. rep.Repeater.energy_per_m *. span /. 2.)
         +. (fam *. e_mat_lb))
    in
    { b_area; b_time; b_energy }

let area_lower_bound spec =
  let lbs = lower_bounds ~staged:(Mat.staged_of_spec spec) spec in
  fun org g -> (lbs org g).b_area

(* The branch-and-bound champion: the metrics of the smallest-area
   candidate evaluated so far.  [ch_area] only shrinks, so any snapshot
   over-approximates the final best area, and because the final best-area
   candidate always survives the staged filters into [within_area], its
   access time [ch_time] upper-bounds the final [best_t] of the time
   filter.  That makes the pruning rules below sound for the staged
   selection of {!Cacti.Optimizer} whatever the evaluation order — see
   [bound_policy] in the interface. *)
type champion = { ch_area : float; ch_time : float; ch_energy : float }

let no_champion =
  { ch_area = Float.infinity; ch_time = Float.infinity;
    ch_energy = Float.infinity }

let rec note_champion cell (b : t) =
  let cur = Atomic.get cell in
  if b.area < cur.ch_area then
    let next =
      { ch_area = b.area; ch_time = b.t_access; ch_energy = b.e_read }
    in
    if not (Atomic.compare_and_set cell cur next) then note_champion cell b

type bound_policy = { acctime_pct : float; energy_only : bool }

type fault = Fault_nan | Fault_exn | Fault_force

let fault_hook : (int -> fault option) ref = ref (fun _ -> None)
let set_fault_hook h = fault_hook := Option.value h ~default:(fun _ -> None)

(* Metric sanity at the array boundary: every quantity the optimizer or a
   downstream model consumes must be a finite non-negative number.  Raises
   [Floatx.Non_finite], which the sweep contains and counts. *)
let check_metrics b =
  let chk what v = ignore (Cacti_util.Floatx.finite_pos ~what v) in
  chk "t_access" b.t_access;
  chk "t_random_cycle" b.t_random_cycle;
  chk "t_interleave" b.t_interleave;
  chk "area" b.area;
  chk "e_read" b.e_read;
  chk "e_write" b.e_write;
  chk "e_activate" b.e_activate;
  chk "e_precharge" b.e_precharge;
  chk "p_leakage" b.p_leakage;
  chk "p_refresh" b.p_refresh

let enumerate_counts ?(pool = Cacti_util.Pool.serial) ?prune ?bound ?mat_cache
    ?max_ndwl ?max_ndbl ?(strict = false) spec =
  Cacti_util.Profile.time "enumerate" @@ fun () ->
  let staged = Mat.staged_of_spec spec in
  (* Integer tiling, mux-chain and page constraints are pure arithmetic:
     screen them serially (and hierarchically — see {!Mat.screen}) before
     fanning the expensive evaluations out. *)
  let survivors, n_total, n_geometry, n_page =
    Mat.screen ?max_ndwl ?max_ndbl ~spec ()
  in
  let screened = List.mapi (fun i cand -> (i, cand)) survivors in
  let n_ok = Atomic.make 0
  and n_area_pruned = Atomic.make 0
  and n_bound_pruned = Atomic.make 0
  and n_nonviable = Atomic.make 0
  and n_nonfinite = Atomic.make 0
  and n_raised = Atomic.make 0 in
  let champion = Atomic.make no_champion in
  let lbs =
    if prune <> None || bound <> None then Some (lower_bounds ~staged spec)
    else None
  in
  (* `Area: could never survive the max_area_pct filter.  `Bound: could
     survive it, but provably cannot displace the champion's candidate as
     the selected solution (see [bound_policy]).  Both compare monotone
     lower bounds against a monotonically improving champion, so a
     candidate pruned under any evaluation order is pruned soundly. *)
  let prune_class org g =
    match lbs with
    | None -> `Eval
    | Some lb -> (
        let b = lb org g in
        let ch = Atomic.get champion in
        let area_cut =
          match prune with
          | Some max_area_pct ->
              b.b_area > ch.ch_area *. (1. +. max_area_pct)
          | None -> false
        in
        if area_cut then `Area
        else
          match bound with
          | Some bp
            when b.b_area > ch.ch_area
                 && (b.b_time > ch.ch_time *. (1. +. bp.acctime_pct)
                    || (bp.energy_only && b.b_time > ch.ch_time
                       && b.b_energy > ch.ch_energy)) ->
              `Bound
          | _ -> `Eval)
  in
  let hook = !fault_hook in
  let solve_mat org g =
    let build () =
      Cacti_util.Profile.time "mat_solve" (fun () ->
          Mat.make_staged ~staged ~spec ~org ())
    in
    match mat_cache with
    | None -> build ()
    | Some cache -> cache (Mat.fingerprint ~spec ~org g) build
  in
  let eval (i, (org, g)) =
    let injected = hook i in
    (* Injected candidates bypass the (evaluation-order-dependent) prunes
       so the fault counts are identical for every worker count — and so
       [Fault_force] force-evaluates a candidate the prunes would skip. *)
    match if injected = None then prune_class org g else `Eval with
    | `Area ->
        Atomic.incr n_area_pruned;
        None
    | `Bound ->
        Atomic.incr n_bound_pruned;
        None
    | `Eval -> (
        try
          (match injected with
          | Some Fault_exn -> failwith "Bank.enumerate: injected fault"
          | _ -> ());
          match (solve_mat org g, injected) with
          | None, Some Fault_nan ->
              raise
                (Cacti_util.Floatx.Non_finite "t_access is nan (injected)")
          | None, _ ->
              Atomic.incr n_nonviable;
              None
          | Some mat, inj ->
              let b = assemble ~staged ~spec ~org mat in
              let b =
                match inj with
                | Some Fault_nan -> { b with t_access = Float.nan }
                | _ -> b
              in
              check_metrics b;
              note_champion champion b;
              Atomic.incr n_ok;
              Some b
        with
        | Cacti_util.Floatx.Non_finite _ when not strict ->
            Atomic.incr n_nonfinite;
            None
        | (Out_of_memory | Stack_overflow) as e -> raise e
        | _ when not strict ->
            Atomic.incr n_raised;
            None)
  in
  let banks = Cacti_util.Pool.parallel_filter_map ~chunk:4 pool eval screened in
  let counts =
    {
      Cacti_util.Diag.candidates = n_total;
      evaluated = Atomic.get n_ok;
      geometry_rejected = n_geometry;
      page_rejected = n_page;
      area_pruned = Atomic.get n_area_pruned;
      bound_pruned = Atomic.get n_bound_pruned;
      nonviable = Atomic.get n_nonviable;
      nonfinite = Atomic.get n_nonfinite;
      raised = Atomic.get n_raised;
    }
  in
  (banks, counts)

let enumerate ?pool ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl ?strict spec
    =
  fst
    (enumerate_counts ?pool ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl
       ?strict spec)

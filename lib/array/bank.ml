open Cacti_tech
open Cacti_circuit

type dram_timing = {
  t_rcd : float;
  t_cas : float;
  t_ras : float;
  t_rp : float;
  t_rc : float;
  t_rrd : float;
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;
  width : float;
  height : float;
  area : float;
  area_efficiency : float;
  t_access : float;
  t_random_cycle : float;
  t_interleave : float;
  dram : dram_timing option;
  e_read : float;
  e_write : float;
  e_activate : float;
  e_precharge : float;
  p_leakage : float;
  p_refresh : float;
  n_subbanks : int;
  pipeline_stages : int;
}

let evaluate ~spec ~org =
  match Mat.make ~spec ~org () with
  | None -> None
  | Some mat ->
      let { Array_spec.ram; tech; output_bits; _ } = spec in
      let is_dram = Cell.is_dram ram in
      let cell = Technology.cell tech ram in
      let periph = Technology.peripheral_device tech ram in
      let feature = Technology.feature_size tech in
      let area_model =
        Area_model.create ~feature_size:feature ~l_gate:periph.Device.l_phy
      in
      let mats_x = Org.mats_x org and mats_y = Org.mats_y org in
      let n_mats = mats_x * mats_y in
      (* The page constraint is part of [Mat.geometry], so any surviving
         mat already satisfies it. *)
      let bank_w = float_of_int mats_x *. mat.Mat.width in
        let bank_h = float_of_int mats_y *. mat.Mat.height in
        let repeater =
          Repeater.design ~device:periph ~area:area_model ~feature
            ~max_delay_penalty:spec.Array_spec.max_repeater_delay_penalty
            ~wire:(Technology.wire tech Semi_global)
            ()
        in
        let htree = Htree.plan ~repeater ~bank_width:bank_w ~bank_height:bank_h in
        let addr_bits = Array_spec.addr_bits spec + 8 in
        let addr_link = Htree.link htree ~bits:addr_bits ~activity:1.0 () in
        let data_out_link =
          Htree.link htree ~bits:output_bits ~activity:0.75 ()
        in
        let data_in_link =
          Htree.link htree ~bits:output_bits ~activity:0.75 ()
        in
        (* Port receivers/drivers at the bank boundary. *)
        let t_port = 3. *. Technology.fo4 tech periph.Device.kind in
        let t_htree_in = addr_link.Stage.delay +. t_port in
        let t_htree_out = data_out_link.Stage.delay +. t_port in
        let t_access =
          t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
          +. mat.Mat.t_sense +. mat.Mat.t_column_out +. t_htree_out
        in
        let t_local_cycle =
          mat.Mat.t_wordline +. mat.Mat.t_bitline +. mat.Mat.t_sense
          +. mat.Mat.t_restore +. mat.Mat.t_precharge
        in
        let t_random_cycle = t_local_cycle in
        let t_htree_stage =
          (t_htree_in +. t_htree_out) /. 6.
        in
        let t_interleave =
          max
            (mat.Mat.t_bitline +. mat.Mat.t_sense +. mat.Mat.t_column_out)
            t_htree_stage
        in
        let active_mats = mats_x in
        let fam = float_of_int active_mats in
        (* Energies. *)
        let e_activate =
          addr_link.Stage.energy +. (fam *. mat.Mat.e_row_activate)
        in
        let e_col_read =
          (fam *. mat.Mat.e_column_read) +. data_out_link.Stage.energy
        in
        let e_col_write =
          (fam *. mat.Mat.e_column_write) +. data_in_link.Stage.energy
        in
        let e_precharge = fam *. mat.Mat.e_precharge in
        let e_read, e_write =
          if is_dram then
            (* SRAM-like interface with auto-precharge: a random read costs
               ACTIVATE + column read + PRECHARGE. *)
            (e_activate +. e_col_read +. e_precharge,
             e_activate +. e_col_write +. e_precharge)
          else
            (e_activate +. e_col_read, e_activate +. e_col_write)
        in
        (* Leakage: mats (sleep transistors halve the non-active ones) +
           H-tree repeaters. *)
        let sleep_factor =
          if spec.Array_spec.sleep_tx then
            (fam +. (float_of_int (n_mats - active_mats) *. 0.5))
            /. float_of_int n_mats
          else 1.0
        in
        let p_leakage =
          (float_of_int n_mats *. mat.Mat.leakage *. sleep_factor)
          +. addr_link.Stage.leakage +. data_out_link.Stage.leakage
          +. data_in_link.Stage.leakage
        in
        (* Refresh. *)
        let p_refresh =
          if not is_dram then 0.
          else
            let wordlines_per_mat =
              mat.Mat.subarray.Subarray.rows * (mat.Mat.n_subarrays / mat.Mat.horiz_subarrays)
            in
            let n_wordlines = wordlines_per_mat * mats_y in
            (* Burst refresh shares command/decode overhead across rows and
               skips the column circuitry entirely. *)
            let refresh_efficiency = 0.75 in
            let e_per_refresh =
              refresh_efficiency
              *. (fam *. (mat.Mat.e_row_activate +. mat.Mat.e_precharge))
            in
            float_of_int n_wordlines *. e_per_refresh
            /. cell.Cell.retention_time
        in
        (* DRAM interface timings. *)
        let dram =
          if not is_dram then None
          else
            let t_rcd =
              t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
              +. mat.Mat.t_sense
            in
            let t_cas = mat.Mat.t_column_out +. t_htree_out in
            let t_ras =
              mat.Mat.t_row_path +. mat.Mat.t_bitline +. mat.Mat.t_sense
              +. mat.Mat.t_restore
            in
            let t_rp = mat.Mat.t_precharge +. (0.3 *. mat.Mat.t_wordline) in
            Some
              {
                t_rcd;
                t_cas;
                t_ras;
                t_rp;
                t_rc = t_ras +. t_rp;
                t_rrd = t_interleave;
              }
        in
        (* Area. *)
        let htree_silicon =
          addr_link.Stage.area +. data_out_link.Stage.area
          +. data_in_link.Stage.area
        in
        let area =
          ((bank_w *. bank_h) +. htree_silicon) *. 1.08
        in
        let cell_area_total =
          float_of_int n_mats
          *. float_of_int mat.Mat.n_subarrays
          *. Subarray.cell_area mat.Mat.subarray
        in
        Some
          {
            spec;
            org;
            mat;
            n_mats;
            active_mats;
            width = bank_w;
            height = bank_h;
            area;
            area_efficiency = cell_area_total /. area;
            t_access;
            t_random_cycle;
            t_interleave;
            dram;
            e_read;
            e_write;
            e_activate;
            e_precharge;
            p_leakage;
            p_refresh;
            n_subbanks = mats_y;
            pipeline_stages = mat.Mat.decoder.Decoder.n_stages + 3;
          }

(* Cheap per-organization lower bound on the final bank area: the cell
   matrix itself (constant across organizations) plus the per-mat control
   block, whose replication grows with the mat count.  Both are provably
   included in [evaluate]'s area (the mat folds the control block into its
   sense strip, and the bank applies the same 1.08 wiring overhead), so a
   candidate whose bound already exceeds the area filter can be skipped
   before any circuit modeling without changing any surviving solution. *)
let area_lower_bound spec =
  let { Array_spec.ram; tech; n_rows; row_bits; _ } = spec in
  let cell = Technology.cell tech ram in
  let periph = Technology.peripheral_device tech ram in
  let feature = Technology.feature_size tech in
  let area_model =
    Area_model.create ~feature_size:feature ~l_gate:periph.Device.l_phy
  in
  let ctl_inv = Gate.inverter ~area:area_model periph ~w_n:(10. *. feature) in
  let wr_drv = Gate.inverter ~area:area_model periph ~w_n:(24. *. feature) in
  let cells_total =
    float_of_int n_rows *. float_of_int row_bits
    *. Cell.width cell ~feature_size:feature
    *. Cell.height cell ~feature_size:feature
  in
  fun (org : Org.t) (g : Mat.geometry) ->
    let n_wordlines = g.Mat.g_rows_sub * g.Mat.g_vert in
    let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
    let control =
      (float_of_int n_ctl *. ctl_inv.Gate.area)
      +. (float_of_int g.Mat.g_out_bits *. 2. *. wr_drv.Gate.area)
    in
    (* 0.999: keep the bound strictly conservative against float rounding. *)
    0.999 *. 1.08
    *. (cells_total +. (float_of_int (Org.n_mats org) *. control))

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

type fault = Fault_nan | Fault_exn

let fault_hook : (int -> fault option) ref = ref (fun _ -> None)
let set_fault_hook h = fault_hook := Option.value h ~default:(fun _ -> None)

(* Metric sanity at the array boundary: every quantity the optimizer or a
   downstream model consumes must be a finite non-negative number.  Raises
   [Floatx.Non_finite], which the sweep contains and counts. *)
let check_metrics b =
  let chk what v = ignore (Cacti_util.Floatx.finite_pos ~what v) in
  chk "t_access" b.t_access;
  chk "t_random_cycle" b.t_random_cycle;
  chk "t_interleave" b.t_interleave;
  chk "area" b.area;
  chk "e_read" b.e_read;
  chk "e_write" b.e_write;
  chk "e_activate" b.e_activate;
  chk "e_precharge" b.e_precharge;
  chk "p_leakage" b.p_leakage;
  chk "p_refresh" b.p_refresh

let enumerate_counts ?(pool = Cacti_util.Pool.serial) ?prune ?max_ndwl
    ?max_ndbl ?(strict = false) spec =
  let dram = Cell.is_dram spec.Array_spec.ram in
  (* Integer tiling, mux-chain and page constraints are pure arithmetic:
     screen them serially before fanning the expensive evaluations out. *)
  let n_geometry = ref 0 and n_page = ref 0 and n_total = ref 0 in
  let screened =
    Org.candidates ?max_ndwl ?max_ndbl ~dram ()
    |> List.filter_map (fun org ->
           incr n_total;
           match Mat.classify ~spec ~org with
           | Ok g -> Some (org, g)
           | Error `Page ->
               incr n_page;
               None
           | Error `Geometry ->
               incr n_geometry;
               None)
    |> List.mapi (fun i cand -> (i, cand))
  in
  let n_ok = Atomic.make 0
  and n_pruned = Atomic.make 0
  and n_nonviable = Atomic.make 0
  and n_nonfinite = Atomic.make 0
  and n_raised = Atomic.make 0 in
  let prune_check, note_area =
    match prune with
    | None -> ((fun _ _ -> false), fun _ -> ())
    | Some max_area_pct ->
        let lb = area_lower_bound spec in
        let best_area = Atomic.make Float.infinity in
        (* [best_area] only shrinks, so any snapshot over-approximates the
           final minimum: a candidate pruned here could never survive the
           [max_area_pct] filter, whatever the evaluation order. *)
        ( (fun org g ->
            lb org g > Atomic.get best_area *. (1. +. max_area_pct)),
          fun (b : t) -> atomic_min best_area b.area )
  in
  let hook = !fault_hook in
  let eval (i, (org, g)) =
    let injected = hook i in
    (* Injected candidates bypass the (evaluation-order-dependent) prune so
       the fault counts are identical for every worker count. *)
    if injected = None && prune_check org g then (
      Atomic.incr n_pruned;
      None)
    else
      try
        (match injected with
        | Some Fault_exn -> failwith "Bank.enumerate: injected fault"
        | _ -> ());
        match (evaluate ~spec ~org, injected) with
        | None, Some Fault_nan ->
            raise
              (Cacti_util.Floatx.Non_finite "t_access is nan (injected)")
        | None, _ ->
            Atomic.incr n_nonviable;
            None
        | Some b, inj ->
            let b =
              match inj with
              | Some Fault_nan -> { b with t_access = Float.nan }
              | _ -> b
            in
            check_metrics b;
            note_area b;
            Atomic.incr n_ok;
            Some b
      with
      | Cacti_util.Floatx.Non_finite _ when not strict ->
          Atomic.incr n_nonfinite;
          None
      | (Out_of_memory | Stack_overflow) as e -> raise e
      | _ when not strict ->
          Atomic.incr n_raised;
          None
  in
  let banks = Cacti_util.Pool.parallel_filter_map ~chunk:4 pool eval screened in
  let counts =
    {
      Cacti_util.Diag.candidates = !n_total;
      evaluated = Atomic.get n_ok;
      geometry_rejected = !n_geometry;
      page_rejected = !n_page;
      area_pruned = Atomic.get n_pruned;
      nonviable = Atomic.get n_nonviable;
      nonfinite = Atomic.get n_nonfinite;
      raised = Atomic.get n_raised;
    }
  in
  (banks, counts)

let enumerate ?pool ?prune ?max_ndwl ?max_ndbl ?strict spec =
  fst (enumerate_counts ?pool ?prune ?max_ndwl ?max_ndbl ?strict spec)

open Cacti_tech
open Cacti_circuit

type dram_timing = {
  t_rcd : float;
  t_cas : float;
  t_ras : float;
  t_rp : float;
  t_rc : float;
  t_rrd : float;
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;
  width : float;
  height : float;
  area : float;
  area_efficiency : float;
  t_access : float;
  t_random_cycle : float;
  t_interleave : float;
  dram : dram_timing option;
  e_read : float;
  e_write : float;
  e_activate : float;
  e_precharge : float;
  p_leakage : float;
  p_refresh : float;
  n_subbanks : int;
  pipeline_stages : int;
}

(* Materialize a [t] from a mat and its flat metrics record.  Both the
   scalar path (via [assemble]) and the columnar kernel (after reading
   the metrics back out of the result columns — a lossless float64
   round-trip) build banks through this single constructor. *)
let bank_of_metrics ~(staged : Staged.t) ~spec ~(org : Org.t) (mat : Mat.t)
    (m : Soa_kernel.metrics) =
  let mats_x = Org.mats_x org and mats_y = Org.mats_y org in
  {
    spec;
    org;
    mat;
    n_mats = mats_x * mats_y;
    active_mats = mats_x;
    width = m.Soa_kernel.m_width;
    height = m.Soa_kernel.m_height;
    area = m.Soa_kernel.m_area;
    area_efficiency = m.Soa_kernel.m_area_efficiency;
    t_access = m.Soa_kernel.m_t_access;
    t_random_cycle = m.Soa_kernel.m_t_random_cycle;
    t_interleave = m.Soa_kernel.m_t_interleave;
    dram =
      (if staged.Staged.is_dram then
         Some
           {
             t_rcd = m.Soa_kernel.m_t_rcd;
             t_cas = m.Soa_kernel.m_t_cas;
             t_ras = m.Soa_kernel.m_t_ras;
             t_rp = m.Soa_kernel.m_t_rp;
             t_rc = m.Soa_kernel.m_t_rc;
             t_rrd = m.Soa_kernel.m_t_rrd;
           }
       else None);
    e_read = m.Soa_kernel.m_e_read;
    e_write = m.Soa_kernel.m_e_write;
    e_activate = m.Soa_kernel.m_e_activate;
    e_precharge = m.Soa_kernel.m_e_precharge;
    p_leakage = m.Soa_kernel.m_p_leakage;
    p_refresh = m.Soa_kernel.m_p_refresh;
    n_subbanks = mats_y;
    pipeline_stages = mat.Mat.decoder.Decoder.n_stages + 3;
  }

(* The bank-level model on top of a solved mat — see
   {!Soa_kernel.metrics_of_mat} for the formulas. *)
let assemble ~(staged : Staged.t) ~spec ~(org : Org.t) (mat : Mat.t) =
  bank_of_metrics ~staged ~spec ~org mat
    (Soa_kernel.metrics_of_mat ~staged ~spec ~org mat)

let evaluate_staged ~staged ~spec ~org =
  match Mat.make_staged ~staged ~spec ~org () with
  | None -> None
  | Some mat -> Some (assemble ~staged ~spec ~org mat)

let evaluate ~spec ~org =
  evaluate_staged ~staged:(Mat.staged_of_spec spec) ~spec ~org

(* Cheap per-organization lower bounds on the final bank metrics, computed
   from the geometry alone (before any circuit modeling).  Each is provably
   a lower bound of the corresponding [assemble] output:

   - area: the cell matrix itself (constant across organizations) plus the
     per-mat sense amplifiers and control block, whose replication grows
     with the mat count and the sensing width.  The mat folds both into
     its sense strip ([sa_area + control_area], every other strip term
     nonnegative) and the bank applies the same 1.08 wiring overhead, so
     all three terms are included in the real area.  The sense-amp term is
     what gives the bound its discriminating power: the cell matrix alone
     is the same for every organization (width x height telescopes to
     [row_bits * n_rows] cells), while lightly-muxed organizations carry
     an amplifier per column.
   - time: the H-tree in + out traversal plus the distributed-RC flight
     terms of the wordline and the bitline.  The bank is at least
     [mats_x * horiz * cols_sub] cells wide and [mats_y * vert * rows_sub]
     cells tall (a subarray is exactly its cell matrix; mat strips and
     H-tree silicon only add to that), the worst-case H-tree path is
     (W + H)/2 in each direction at [delay_per_m] per meter, plus the two
     3-FO4 ports.  [t_row_path >= Decoder.t_line = 0.38 * r_line * c_line]
     with the line RC exactly [horiz * cols_sub] cell pitches of wordline
     wire; the SRAM [t_read_develop >= 0.38 * r_bl * c_bl] (the
     cell-current development term and the sense-amp input load are
     nonnegative) and the DRAM [t_charge_share] is monotone in the bitline
     capacitance, so evaluating it at [c_sense_input = 0] bounds it from
     below.  These quadratic terms are what catch the slow candidates: a
     degenerate organization is slow because of its mile-long wordlines
     or bitlines, not its H-tree.
   - energy (read): the address + data-out H-tree link energy over the same
     minimum span, plus one sense-amp firing per sensed column (and, for
     DRAM, the storage-cell restore charge on every active column); all
     other mat energies are nonnegative.

   The 0.999 factor keeps each bound strictly conservative against float
   rounding, so pruning on it can never drop a candidate that would have
   tied or beaten the eventual winner. *)
type bounds = { b_area : float; b_time : float; b_energy : float }

(* The scalar-input core of the bound evaluation: all per-spec constants
   (including the staged sense-amp area/energy, hoisted into per-degree
   arrays so the hot path does no association-list lookups) are closed
   over once; each call is then pure float math over the candidate's
   parameter scalars.  [lower_bounds] feeds it from the (org, geometry)
   records; the columnar kernel feeds it from the {!Soa_kernel} parameter
   columns — which store [float_of_int] of the same integer expressions,
   so both callers are bit-identical. *)
let bounds_of ~(staged : Staged.t) spec =
  let { Array_spec.n_rows; row_bits; output_bits; _ } = spec in
  let cell_w = staged.Staged.cell_w and cell_h = staged.Staged.cell_h in
  let ctl_area = staged.Staged.ctl_inv.Gate.area in
  let wr_area = staged.Staged.wr_drv.Gate.area in
  let rep = staged.Staged.repeater in
  let t_port = staged.Staged.t_port in
  let cells_total =
    float_of_int n_rows *. float_of_int row_bits *. cell_w *. cell_h
  in
  let energy_bits =
    float_of_int (Array_spec.addr_bits spec + 8)
    +. (0.75 *. float_of_int output_bits)
  in
  let is_dram = staged.Staged.is_dram in
  let cell = staged.Staged.cell in
  let wl_rc = cell.Cell.r_wl_per_cell *. cell.Cell.c_wl_per_cell in
  let r_bl = cell.Cell.r_bl_per_cell and c_bl = cell.Cell.c_bl_per_cell in
  let vdd_cell = cell.Cell.vdd_cell in
  (* DRAM charge-share constants (see [Bitline.dram]). *)
  let r_access = 0.15 *. vdd_cell /. cell.Cell.i_cell_on in
  let cs = cell.Cell.storage_cap in
  let e_restore_per_col = 0.75 *. cs *. vdd_cell *. vdd_cell in
  let sense_area = Array.make 9 Float.nan in
  let sense_energy = Array.make 9 Float.nan in
  List.iter
    (fun (d, (s : Sense_amp.t)) ->
      if d >= 0 && d < 9 then begin
        sense_area.(d) <- s.Sense_amp.area;
        sense_energy.(d) <- s.Sense_amp.energy
      end)
    staged.Staged.sense_by_deg;
  let sense_of eff_deg =
    if eff_deg >= 0 && eff_deg < 9 && not (Float.is_nan sense_area.(eff_deg))
    then (sense_area.(eff_deg), sense_energy.(eff_deg))
    else
      (* Degree outside the staged table: same on-demand fallback (and
         therefore same values) as [Staged.sense]. *)
      let s = Staged.sense staged ~deg_bl_mux:eff_deg in
      (s.Sense_amp.area, s.Sense_amp.energy)
  in
  fun ~eff_deg ~f_n_ctl ~f_out_bits ~f_n_mats ~f_n_sa ~f_wspan ~f_hspan
      ~f_line_cells ~f_rows ~f_sensed_pa ~f_mats_x ->
    let s_area, s_energy = sense_of eff_deg in
    let control = (f_n_ctl *. ctl_area) +. (f_out_bits *. 2. *. wr_area) in
    let sa_area = f_n_sa *. s_area in
    let b_area =
      0.999 *. 1.08 *. (cells_total +. (f_n_mats *. (control +. sa_area)))
    in
    let w_lb = f_wspan *. cell_w in
    let h_lb = f_hspan *. cell_h in
    let span = w_lb +. h_lb in
    (* Wordline flight: exactly [Decoder.t_line] for this line length. *)
    let t_wordline_lb = 0.38 *. f_line_cells *. f_line_cells *. wl_rc in
    (* Bitline: the distributed-RC floor of develop / charge-share. *)
    let t_bitline_lb =
      if is_dram then
        let c_line = f_rows *. c_bl in
        let c_eq = cs *. c_line /. (cs +. c_line) in
        2.3 *. (r_access +. (0.5 *. f_rows *. r_bl)) *. c_eq
      else 0.38 *. f_rows *. f_rows *. r_bl *. c_bl
    in
    let b_time =
      0.999
      *. ((rep.Repeater.delay_per_m *. span) +. (2. *. t_port)
         +. t_wordline_lb +. t_bitline_lb)
    in
    let e_mat_lb =
      (f_sensed_pa *. s_energy)
      +. (if is_dram then f_line_cells *. e_restore_per_col else 0.)
    in
    let b_energy =
      0.999
      *. ((energy_bits *. rep.Repeater.energy_per_m *. span /. 2.)
         +. (f_mats_x *. e_mat_lb))
    in
    { b_area; b_time; b_energy }

let lower_bounds ~(staged : Staged.t) spec =
  let f = bounds_of ~staged spec in
  let is_dram = staged.Staged.is_dram in
  fun (org : Org.t) (g : Mat.geometry) ->
    let n_wordlines = g.Mat.g_rows_sub * g.Mat.g_vert in
    let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
    let eff_deg = if is_dram then 1 else org.Org.deg_bl_mux in
    let n_sa =
      if is_dram then g.Mat.g_horiz * g.Mat.g_cols_sub else g.Mat.g_sensed
    in
    f ~eff_deg ~f_n_ctl:(float_of_int n_ctl)
      ~f_out_bits:(float_of_int g.Mat.g_out_bits)
      ~f_n_mats:(float_of_int (Org.n_mats org))
      ~f_n_sa:(float_of_int n_sa)
      ~f_wspan:
        (float_of_int (Org.mats_x org * g.Mat.g_horiz * g.Mat.g_cols_sub))
      ~f_hspan:
        (float_of_int (Org.mats_y org * g.Mat.g_vert * g.Mat.g_rows_sub))
      ~f_line_cells:(float_of_int (g.Mat.g_horiz * g.Mat.g_cols_sub))
      ~f_rows:(float_of_int g.Mat.g_rows_sub)
      ~f_sensed_pa:(float_of_int g.Mat.g_sensed_per_access)
      ~f_mats_x:(float_of_int (Org.mats_x org))

let area_lower_bound spec =
  let lbs = lower_bounds ~staged:(Mat.staged_of_spec spec) spec in
  fun org g -> (lbs org g).b_area

(* The branch-and-bound champion: the metrics of the smallest-area
   candidate evaluated so far.  [ch_area] only shrinks, so any snapshot
   over-approximates the final best area, and because the final best-area
   candidate always survives the staged filters into [within_area], its
   access time [ch_time] upper-bounds the final [best_t] of the time
   filter.  That makes the pruning rules below sound for the staged
   selection of {!Cacti.Optimizer} whatever the evaluation order — see
   [bound_policy] in the interface. *)
type champion = { ch_area : float; ch_time : float; ch_energy : float }

let no_champion =
  { ch_area = Float.infinity; ch_time = Float.infinity;
    ch_energy = Float.infinity }

let rec note_champion_v cell ~area ~time ~energy =
  let cur = Atomic.get cell in
  if area < cur.ch_area then
    let next = { ch_area = area; ch_time = time; ch_energy = energy } in
    if not (Atomic.compare_and_set cell cur next) then
      note_champion_v cell ~area ~time ~energy

let note_champion cell (b : t) =
  note_champion_v cell ~area:b.area ~time:b.t_access ~energy:b.e_read

type bound_policy = { acctime_pct : float; energy_only : bool }

type fault = Fault_nan | Fault_exn | Fault_force

let fault_hook : (int -> fault option) ref = ref (fun _ -> None)
let set_fault_hook h = fault_hook := Option.value h ~default:(fun _ -> None)

(* Metric sanity at the array boundary: every quantity the optimizer or a
   downstream model consumes must be a finite non-negative number.  Raises
   [Floatx.Non_finite], which the sweep contains and counts. *)
let check_metrics b =
  let chk what v = ignore (Cacti_util.Floatx.finite_pos ~what v) in
  chk "t_access" b.t_access;
  chk "t_random_cycle" b.t_random_cycle;
  chk "t_interleave" b.t_interleave;
  chk "area" b.area;
  chk "e_read" b.e_read;
  chk "e_write" b.e_write;
  chk "e_activate" b.e_activate;
  chk "e_precharge" b.e_precharge;
  chk "p_leakage" b.p_leakage;
  chk "p_refresh" b.p_refresh

(* The same checks, in the same order with the same messages, against the
   flat metrics record — the kernel-path twin of [check_metrics]. *)
let check_metrics_m (m : Soa_kernel.metrics) =
  let chk what v = ignore (Cacti_util.Floatx.finite_pos ~what v) in
  chk "t_access" m.Soa_kernel.m_t_access;
  chk "t_random_cycle" m.Soa_kernel.m_t_random_cycle;
  chk "t_interleave" m.Soa_kernel.m_t_interleave;
  chk "area" m.Soa_kernel.m_area;
  chk "e_read" m.Soa_kernel.m_e_read;
  chk "e_write" m.Soa_kernel.m_e_write;
  chk "e_activate" m.Soa_kernel.m_e_activate;
  chk "e_precharge" m.Soa_kernel.m_e_precharge;
  chk "p_leakage" m.Soa_kernel.m_p_leakage;
  chk "p_refresh" m.Soa_kernel.m_p_refresh

(* Memoize a sub-stage computation, storing the result so a raising
   design re-raises identically on every hit (keeping per-candidate fault
   counts equal between first and repeat encounters).  [cap] resets the
   table when it grows past the bound, for tables that outlive a sweep. *)
let memoized ?cap mu tbl key compute =
  match Mutex.protect mu (fun () -> Hashtbl.find_opt tbl key) with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> (
      let r =
        try Ok (compute ())
        with
        | (Out_of_memory | Stack_overflow) as e -> raise e
        | e -> Error e
      in
      Mutex.protect mu (fun () ->
          (match cap with
          | Some c when Hashtbl.length tbl >= c -> Hashtbl.reset tbl
          | _ -> ());
          if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key r);
      match r with Ok v -> v | Error e -> raise e)

(* Cross-sweep memo of the two expensive solver sub-stages.  A salt from
   [Mat.fingerprint_salt] captures every spec input the subarray and
   decoder designs read (cell kind, feature size, wire parasitics), so a
   (salt, dims) key identifies a design across sweeps exactly as
   [mat_cache] keys identify whole mats.  Consulted only on memoized
   sweeps (when the caller supplies [mat_cache]); unmemoized sweeps get
   fresh per-sweep tables so the reference path stays self-contained. *)
let stage_memo_cap = 8192

let g_sub_tbl : (string * (int * int * int), (Subarray.t, exn) result) Hashtbl.t
    =
  Hashtbl.create 512

let g_sub_mu = Mutex.create ()

let g_dec_tbl :
    (string * (int * int * int * int), (Decoder.t, exn) result) Hashtbl.t =
  Hashtbl.create 256

let g_dec_mu = Mutex.create ()

let reset_stage_memo () =
  Mutex.protect g_sub_mu (fun () -> Hashtbl.reset g_sub_tbl);
  Mutex.protect g_dec_mu (fun () -> Hashtbl.reset g_dec_tbl)

(* A completed columnar sweep, before any bank record exists.  Consumers
   either materialize every surviving candidate ({!enumerate_counts}) or
   scan the metric columns and materialize only the selected one (the
   staged-selection fast path in {!Cacti.Solve_cache}). *)
type sweep = {
  sw_spec : Array_spec.t;
  sw_staged : Staged.t;
  sw_soa : Soa_kernel.t;
  sw_counts : Cacti_util.Diag.counts;
}

type run_result = Banks of t list * Cacti_util.Diag.counts | Soa of sweep

let run ?(pool = Cacti_util.Pool.serial) ?(cancel = Cacti_util.Cancel.never)
    ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl ?(strict = false)
    ?(kernel = true) ?screened spec =
  Cacti_util.Profile.time "enumerate" @@ fun () ->
  Cacti_util.Cancel.check cancel;
  let staged = Mat.staged_of_spec spec in
  let is_dram = staged.Staged.is_dram in
  (* Integer tiling, mux-chain and page constraints are pure arithmetic:
     screen them serially (and hierarchically — see {!Mat.screen}) before
     fanning the expensive evaluations out.  A caller that already holds
     the screen result (e.g. incremental re-solve) passes it in. *)
  let survivors, n_total, n_geometry, n_page =
    match screened with
    | Some s -> s
    | None -> Mat.screen ?max_ndwl ?max_ndbl ~spec ()
  in
  let n_ok = Atomic.make 0
  and n_area_pruned = Atomic.make 0
  and n_bound_pruned = Atomic.make 0
  and n_nonviable = Atomic.make 0
  and n_nonfinite = Atomic.make 0
  and n_raised = Atomic.make 0 in
  let champion = Atomic.make no_champion in
  let hook = !fault_hook in
  let salt = Mat.fingerprint_salt ~spec in
  (* `Area: could never survive the max_area_pct filter.  `Bound: could
     survive it, but provably cannot displace the champion's candidate as
     the selected solution (see [bound_policy]).  Both compare monotone
     lower bounds against a monotonically improving champion, so a
     candidate pruned under any evaluation order is pruned soundly. *)
  let decide b_area b_time b_energy =
    let ch = Atomic.get champion in
    let area_cut =
      match prune with
      | Some max_area_pct -> b_area > ch.ch_area *. (1. +. max_area_pct)
      | None -> false
    in
    if area_cut then `Area
    else
      match bound with
      | Some bp
        when b_area > ch.ch_area
             && (b_time > ch.ch_time *. (1. +. bp.acctime_pct)
                || (bp.energy_only && b_time > ch.ch_time
                   && b_energy > ch.ch_energy)) ->
          `Bound
      | _ -> `Eval
  in
  let counts () =
    {
      Cacti_util.Diag.candidates = n_total;
      evaluated = Atomic.get n_ok;
      geometry_rejected = n_geometry;
      page_rejected = n_page;
      area_pruned = Atomic.get n_area_pruned;
      bound_pruned = Atomic.get n_bound_pruned;
      nonviable = Atomic.get n_nonviable;
      nonfinite = Atomic.get n_nonfinite;
      raised = Atomic.get n_raised;
    }
  in
  if not kernel then begin
    (* Scalar reference path: per-candidate record evaluation, kept
       verbatim as the identity baseline for the columnar kernel. *)
    let indexed = List.mapi (fun i cand -> (i, cand)) survivors in
    let lbs =
      if prune <> None || bound <> None then Some (lower_bounds ~staged spec)
      else None
    in
    let prune_class org g =
      match lbs with
      | None -> `Eval
      | Some lb ->
          let b = lb org g in
          decide b.b_area b.b_time b.b_energy
    in
    let solve_mat org g =
      let build () =
        Cacti_util.Profile.time "mat_solve" (fun () ->
            Mat.make_staged ~staged ~spec ~org ())
      in
      match mat_cache with
      | None -> build ()
      | Some cache -> cache (Mat.fingerprint_key ~salt ~is_dram ~org g) build
    in
    let eval (i, (org, g)) =
      (* Cancellation poll, outside the containment below: a fired token
         must abort the sweep, not be counted as a candidate fault. *)
      Cacti_util.Cancel.check cancel;
      let injected = hook i in
      (* Injected candidates bypass the (evaluation-order-dependent) prunes
         so the fault counts are identical for every worker count — and so
         [Fault_force] force-evaluates a candidate the prunes would skip. *)
      match if injected = None then prune_class org g else `Eval with
      | `Area ->
          Atomic.incr n_area_pruned;
          None
      | `Bound ->
          Atomic.incr n_bound_pruned;
          None
      | `Eval -> (
          try
            (match injected with
            | Some Fault_exn -> failwith "Bank.enumerate: injected fault"
            | _ -> ());
            match (solve_mat org g, injected) with
            | None, Some Fault_nan ->
                raise
                  (Cacti_util.Floatx.Non_finite "t_access is nan (injected)")
            | None, _ ->
                Atomic.incr n_nonviable;
                None
            | Some mat, inj ->
                let b = assemble ~staged ~spec ~org mat in
                let b =
                  match inj with
                  | Some Fault_nan -> { b with t_access = Float.nan }
                  | _ -> b
                in
                check_metrics b;
                note_champion champion b;
                Atomic.incr n_ok;
                Some b
          with
          | Cacti_util.Floatx.Non_finite _ when not strict ->
              Atomic.incr n_nonfinite;
              None
          | (Out_of_memory | Stack_overflow) as e -> raise e
          | _ when not strict ->
              Atomic.incr n_raised;
              None)
    in
    let banks =
      Cacti_util.Pool.parallel_filter_map ~chunk:4 pool eval indexed
    in
    Banks (banks, counts ())
  end
  else begin
    (* Columnar kernel path.  Identical decision structure to the scalar
       path (same prune comparisons against the same champion cell, same
       fault containment, same candidate order per worker count), but the
       data flows through {!Soa_kernel} columns: bounds are evaluated
       branch-free over chunk ranges from the parameter columns, solved
       metrics land in result columns, and surviving candidates
       materialize into [t] records once, after the sweep. *)
    let soa =
      Cacti_util.Profile.time "column_build" (fun () ->
          Soa_kernel.build ~cancel ~is_dram survivors)
    in
    let n = soa.Soa_kernel.n in
    let bounds_fn =
      if prune <> None || bound <> None then Some (bounds_of ~staged spec)
      else None
    in
    (* Sub-stage memo tables.  A sweep over ~2000 survivors has only
       ~300 distinct subarrays and ~125 distinct decoders (the decoder
       does not depend on the bitline-mux degree — none of its subarray
       inputs do), so each is solved once.  Memoized sweeps share the
       cross-sweep tables keyed by salt: the same designs recur across a
       study matrix (sizes of one config share most subarray shapes), and
       a decoder costs ~3 us to design. *)
    let sub_of, dec_of =
      if mat_cache <> None then
        ( (fun ~rows ~cols ~deg ->
            memoized ~cap:stage_memo_cap g_sub_mu g_sub_tbl
              (salt, (rows, cols, deg))
              (fun () -> Mat.subarray_of ~staged ~rows ~cols ~deg)),
          fun (sub : Subarray.t) ~horiz ~vert ->
            memoized ~cap:stage_memo_cap g_dec_mu g_dec_tbl
              (salt, (sub.Subarray.rows, sub.Subarray.cols, horiz, vert))
              (fun () -> Mat.decoder_of ~staged sub ~horiz ~vert) )
      else
        let sub_tbl = Hashtbl.create 512 and sub_mu = Mutex.create () in
        let dec_tbl = Hashtbl.create 256 and dec_mu = Mutex.create () in
        ( (fun ~rows ~cols ~deg ->
            memoized sub_mu sub_tbl (rows, cols, deg) (fun () ->
                Mat.subarray_of ~staged ~rows ~cols ~deg)),
          fun (sub : Subarray.t) ~horiz ~vert ->
            memoized dec_mu dec_tbl
              (sub.Subarray.rows, sub.Subarray.cols, horiz, vert)
              (fun () -> Mat.decoder_of ~staged sub ~horiz ~vert) )
    in
    let solve_mat org g =
      let build () =
        Cacti_util.Profile.time "mat_solve" (fun () ->
            Mat.eval_geometry ~staged ~sub_of ~dec_of ~org g)
      in
      match mat_cache with
      | None -> build ()
      | Some cache -> cache (Mat.fingerprint_key ~salt ~is_dram ~org g) build
    in
    let status = soa.Soa_kernel.status in
    let eval_one i =
      let org = soa.Soa_kernel.orgs.(i) and g = soa.Soa_kernel.geos.(i) in
      let injected = hook i in
      let cls =
        if injected <> None || bounds_fn = None then `Eval
        else
          decide soa.Soa_kernel.b_area.{i} soa.Soa_kernel.b_time.{i}
            soa.Soa_kernel.b_energy.{i}
      in
      match cls with
      | `Area ->
          Atomic.incr n_area_pruned;
          Bytes.set status i Soa_kernel.st_area_pruned
      | `Bound ->
          Atomic.incr n_bound_pruned;
          Bytes.set status i Soa_kernel.st_bound_pruned
      | `Eval -> (
          try
            (match injected with
            | Some Fault_exn -> failwith "Bank.enumerate: injected fault"
            | _ -> ());
            match (solve_mat org g, injected) with
            | None, Some Fault_nan ->
                raise
                  (Cacti_util.Floatx.Non_finite "t_access is nan (injected)")
            | None, _ ->
                Atomic.incr n_nonviable;
                Bytes.set status i Soa_kernel.st_nonviable
            | Some mat, inj ->
                let m = Soa_kernel.metrics_of_mat ~staged ~spec ~org mat in
                let m =
                  match inj with
                  | Some Fault_nan ->
                      { m with Soa_kernel.m_t_access = Float.nan }
                  | _ -> m
                in
                Soa_kernel.set_metrics soa i m;
                check_metrics_m m;
                note_champion_v champion ~area:m.Soa_kernel.m_area
                  ~time:m.Soa_kernel.m_t_access ~energy:m.Soa_kernel.m_e_read;
                Atomic.incr n_ok;
                soa.Soa_kernel.mats.(i) <- Some mat;
                Bytes.set status i Soa_kernel.st_ok
          with
          | Cacti_util.Floatx.Non_finite _ when not strict ->
              Atomic.incr n_nonfinite;
              Bytes.set status i Soa_kernel.st_nonfinite
          | (Out_of_memory | Stack_overflow) as e -> raise e
          | _ when not strict ->
              Atomic.incr n_raised;
              Bytes.set status i Soa_kernel.st_raised)
    in
    let chunk = 64 in
    let n_chunks = (n + chunk - 1) / chunk in
    Cacti_util.Profile.time "kernel_eval" (fun () ->
        Cacti_util.Pool.run_chunked ~chunk:1 pool n_chunks (fun c ->
            (* One cancellation poll per partition chunk, outside the
               per-candidate containment: every pool domain observes a
               fired token within one chunk and unwinds, so an expired
               solve aborts in milliseconds. *)
            Cacti_util.Cancel.check cancel;
            let lo = c * chunk in
            let hi = min n (lo + chunk) in
            (match bounds_fn with
            | Some f ->
                for i = lo to hi - 1 do
                  let b =
                    f ~eff_deg:soa.Soa_kernel.eff_deg.(i)
                      ~f_n_ctl:soa.Soa_kernel.f_n_ctl.{i}
                      ~f_out_bits:soa.Soa_kernel.f_out_bits.{i}
                      ~f_n_mats:soa.Soa_kernel.f_n_mats.{i}
                      ~f_n_sa:soa.Soa_kernel.f_n_sa.{i}
                      ~f_wspan:soa.Soa_kernel.f_wspan.{i}
                      ~f_hspan:soa.Soa_kernel.f_hspan.{i}
                      ~f_line_cells:soa.Soa_kernel.f_line_cells.{i}
                      ~f_rows:soa.Soa_kernel.f_rows.{i}
                      ~f_sensed_pa:soa.Soa_kernel.f_sensed_pa.{i}
                      ~f_mats_x:soa.Soa_kernel.f_mats_x.{i}
                  in
                  soa.Soa_kernel.b_area.{i} <- b.b_area;
                  soa.Soa_kernel.b_time.{i} <- b.b_time;
                  soa.Soa_kernel.b_energy.{i} <- b.b_energy
                done
            | None -> ());
            for i = lo to hi - 1 do
              eval_one i
            done));
    Soa { sw_spec = spec; sw_staged = staged; sw_soa = soa;
          sw_counts = counts () }
  end

let sweep_bank sw i =
  let soa = sw.sw_soa in
  if Bytes.get soa.Soa_kernel.status i <> Soa_kernel.st_ok then
    invalid_arg "Bank.sweep_bank: candidate did not evaluate";
  bank_of_metrics ~staged:sw.sw_staged ~spec:sw.sw_spec
    ~org:soa.Soa_kernel.orgs.(i)
    (match soa.Soa_kernel.mats.(i) with Some m -> m | None -> assert false)
    (Soa_kernel.get_metrics soa i)

let materialize_all sw =
  let soa = sw.sw_soa in
  let banks = ref [] in
  for i = soa.Soa_kernel.n - 1 downto 0 do
    if Bytes.get soa.Soa_kernel.status i = Soa_kernel.st_ok then
      banks := sweep_bank sw i :: !banks
  done;
  !banks

let enumerate_counts ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl
    ?max_ndbl ?strict ?kernel ?screened spec =
  match
    run ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl ?strict
      ?kernel ?screened spec
  with
  | Banks (banks, counts) -> (banks, counts)
  | Soa sw -> (materialize_all sw, sw.sw_counts)

let enumerate_soa ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl
    ?strict ?screened spec =
  match
    run ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl ?strict
      ~kernel:true ?screened spec
  with
  | Soa sw -> sw
  | Banks _ -> assert false

let enumerate ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl ?max_ndbl
    ?strict ?kernel ?screened spec =
  fst
    (enumerate_counts ?pool ?cancel ?prune ?bound ?mat_cache ?max_ndwl
       ?max_ndbl ?strict ?kernel ?screened spec)

type t = {
  ram : Cacti_tech.Cell.ram_kind;
  tech : Cacti_tech.Technology.t;
  n_rows : int;
  row_bits : int;
  output_bits : int;
  max_repeater_delay_penalty : float;
  sleep_tx : bool;
  page_bits : int option;
}

let validate t =
  let diags = ref [] in
  let err reason fmt =
    Printf.ksprintf
      (fun m ->
        diags :=
          Cacti_util.Diag.error ~component:"array_spec" ~reason m :: !diags)
      fmt
  in
  if t.n_rows <= 0 then err "non_positive" "row count %d must be positive" t.n_rows;
  if t.row_bits <= 0 then
    err "non_positive" "row width %d bits must be positive" t.row_bits;
  if t.output_bits <= 0 then
    err "non_positive" "output width %d bits must be positive" t.output_bits;
  (match t.page_bits with
  | Some p when p <= 0 -> err "non_positive" "page size %d bits must be positive" p
  | _ -> ());
  if
    not
      (Float.is_finite t.max_repeater_delay_penalty
      && t.max_repeater_delay_penalty >= 0.)
  then
    err "bad_penalty" "repeater delay penalty %g must be finite and >= 0"
      t.max_repeater_delay_penalty;
  if
    !diags = []
    && t.output_bits > t.n_rows * t.row_bits
  then
    err "output_too_wide" "%d output bits exceed the %d-bit array"
      t.output_bits (t.n_rows * t.row_bits);
  match List.rev !diags with [] -> Ok t | ds -> Error ds

let create ?(max_repeater_delay_penalty = 0.) ?(sleep_tx = false) ?page_bits
    ~ram ~tech ~n_rows ~row_bits ~output_bits () =
  let t =
    { ram; tech; n_rows; row_bits; output_bits;
      max_repeater_delay_penalty; sleep_tx; page_bits }
  in
  match validate t with
  | Ok t -> t
  | Error (d :: _) ->
      invalid_arg ("Array_spec.create: " ^ d.Cacti_util.Diag.message)
  | Error [] -> assert false

let capacity_bits t = t.n_rows * t.row_bits

let addr_bits t =
  let words = capacity_bits t / t.output_bits in
  Cacti_util.Floatx.clog2 (max 2 words)

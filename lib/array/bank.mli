(** Bank assembly: mats + H-tree + port, producing the full metric record
    CACTI-D's optimizer ranks.

    Timing model (Section 2.3.5): for SRAM-interface operation the array
    reports access time, random cycle time and multisubbank-interleave cycle
    time; for DRAM it additionally reports the main-memory-style timing
    parameters tRCD, CAS latency, tRAS, tRP and tRC, with the destructive
    readout's writeback/restore and the bitline precharge bounding the cycle
    times. *)

type dram_timing = {
  t_rcd : float;  (** ACTIVATE to READ/WRITE, s *)
  t_cas : float;  (** READ to data, s *)
  t_ras : float;  (** ACTIVATE to PRECHARGE (includes restore), s *)
  t_rp : float;  (** PRECHARGE to ACTIVATE, s *)
  t_rc : float;  (** full row cycle: tRAS + tRP, s *)
  t_rrd : float;  (** bank/subbank interleave bound, s *)
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;  (** mats activated per access (one horizontal slice) *)
  width : float;
  height : float;
  area : float;
  area_efficiency : float;  (** cell area / bank area *)
  t_access : float;  (** s: address-in to data-at-port *)
  t_random_cycle : float;  (** s: back-to-back accesses anywhere in the bank *)
  t_interleave : float;  (** s: multisubbank interleave cycle time *)
  dram : dram_timing option;
  e_read : float;  (** J per read access *)
  e_write : float;  (** J per write access *)
  e_activate : float;  (** J per DRAM ACTIVATE (= e_read for SRAM) *)
  e_precharge : float;  (** J per DRAM PRECHARGE *)
  p_leakage : float;  (** W, with sleep-transistor gating if enabled *)
  p_refresh : float;  (** W, DRAM refresh *)
  n_subbanks : int;  (** interleavable horizontal slices *)
  pipeline_stages : int;  (** logic depth proxy used for clocking limits *)
}

val evaluate : spec:Array_spec.t -> org:Org.t -> t option
(** Full metrics for one candidate organization; [None] if invalid. *)

type fault = Fault_nan | Fault_exn
(** Test-only fault injection: [Fault_nan] poisons the candidate's access
    time with NaN after evaluation, [Fault_exn] raises inside the contained
    region before evaluation. *)

val set_fault_hook : (int -> fault option) option -> unit
(** Install (or with [None] clear) a hook consulted once per screened
    candidate, keyed by its position in the post-screen enumeration order.
    Injected candidates bypass the area prune so the resulting [nonfinite] /
    [raised] counts are identical for every worker count.  Test-only; the
    hook must be cleared (and is global, so not reentrant) — production code
    never sets it. *)

val enumerate_counts :
  ?pool:Cacti_util.Pool.t ->
  ?prune:float ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  ?strict:bool ->
  Array_spec.t ->
  t list * Cacti_util.Diag.counts
(** All valid organizations of the spec, in the deterministic grid order of
    {!Org.candidates}, plus the rejection histogram over every candidate
    considered.

    [pool] fans the candidate evaluations out across domains; the returned
    list is identical (same elements, same order) for any worker count.
    [prune], when set to the optimizer's [max_area_pct], skips candidates
    whose cheap area lower bound already exceeds the best area seen so far
    by more than that fraction — such candidates can never survive the
    optimizer's area filter, so every solution the staged selection of
    Section 2.4 can return is unaffected.

    Per-candidate evaluation is fault-contained: an exception escaping the
    circuit model, or a non-finite / negative delay, energy, area or power,
    rejects that candidate (counted under [raised] / [nonfinite]) instead of
    killing the sweep.  [strict] (default false) disables the containment
    and lets the first such failure propagate. *)

val enumerate :
  ?pool:Cacti_util.Pool.t ->
  ?prune:float ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  ?strict:bool ->
  Array_spec.t ->
  t list
(** {!enumerate_counts} without the histogram. *)

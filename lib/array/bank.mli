(** Bank assembly: mats + H-tree + port, producing the full metric record
    CACTI-D's optimizer ranks.

    Timing model (Section 2.3.5): for SRAM-interface operation the array
    reports access time, random cycle time and multisubbank-interleave cycle
    time; for DRAM it additionally reports the main-memory-style timing
    parameters tRCD, CAS latency, tRAS, tRP and tRC, with the destructive
    readout's writeback/restore and the bitline precharge bounding the cycle
    times. *)

type dram_timing = {
  t_rcd : float;  (** ACTIVATE to READ/WRITE, s *)
  t_cas : float;  (** READ to data, s *)
  t_ras : float;  (** ACTIVATE to PRECHARGE (includes restore), s *)
  t_rp : float;  (** PRECHARGE to ACTIVATE, s *)
  t_rc : float;  (** full row cycle: tRAS + tRP, s *)
  t_rrd : float;  (** bank/subbank interleave bound, s *)
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;  (** mats activated per access (one horizontal slice) *)
  width : float;
  height : float;
  area : float;
  area_efficiency : float;  (** cell area / bank area *)
  t_access : float;  (** s: address-in to data-at-port *)
  t_random_cycle : float;  (** s: back-to-back accesses anywhere in the bank *)
  t_interleave : float;  (** s: multisubbank interleave cycle time *)
  dram : dram_timing option;
  e_read : float;  (** J per read access *)
  e_write : float;  (** J per write access *)
  e_activate : float;  (** J per DRAM ACTIVATE (= e_read for SRAM) *)
  e_precharge : float;  (** J per DRAM PRECHARGE *)
  p_leakage : float;  (** W, with sleep-transistor gating if enabled *)
  p_refresh : float;  (** W, DRAM refresh *)
  n_subbanks : int;  (** interleavable horizontal slices *)
  pipeline_stages : int;  (** logic depth proxy used for clocking limits *)
}

val evaluate : spec:Array_spec.t -> org:Org.t -> t option
(** Full metrics for one candidate organization; [None] if invalid. *)

val enumerate :
  ?pool:Cacti_util.Pool.t ->
  ?prune:float ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  Array_spec.t ->
  t list
(** All valid organizations of the spec, in the deterministic grid order of
    {!Org.candidates}.

    [pool] fans the candidate evaluations out across domains; the returned
    list is identical (same elements, same order) for any worker count.
    [prune], when set to the optimizer's [max_area_pct], skips candidates
    whose cheap area lower bound already exceeds the best area seen so far
    by more than that fraction — such candidates can never survive the
    optimizer's area filter, so every solution the staged selection of
    Section 2.4 can return is unaffected. *)

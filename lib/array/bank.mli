(** Bank assembly: mats + H-tree + port, producing the full metric record
    CACTI-D's optimizer ranks.

    Timing model (Section 2.3.5): for SRAM-interface operation the array
    reports access time, random cycle time and multisubbank-interleave cycle
    time; for DRAM it additionally reports the main-memory-style timing
    parameters tRCD, CAS latency, tRAS, tRP and tRC, with the destructive
    readout's writeback/restore and the bitline precharge bounding the cycle
    times. *)

type dram_timing = {
  t_rcd : float;  (** ACTIVATE to READ/WRITE, s *)
  t_cas : float;  (** READ to data, s *)
  t_ras : float;  (** ACTIVATE to PRECHARGE (includes restore), s *)
  t_rp : float;  (** PRECHARGE to ACTIVATE, s *)
  t_rc : float;  (** full row cycle: tRAS + tRP, s *)
  t_rrd : float;  (** bank/subbank interleave bound, s *)
}

type t = {
  spec : Array_spec.t;
  org : Org.t;
  mat : Mat.t;
  n_mats : int;
  active_mats : int;  (** mats activated per access (one horizontal slice) *)
  width : float;
  height : float;
  area : float;
  area_efficiency : float;  (** cell area / bank area *)
  t_access : float;  (** s: address-in to data-at-port *)
  t_random_cycle : float;  (** s: back-to-back accesses anywhere in the bank *)
  t_interleave : float;  (** s: multisubbank interleave cycle time *)
  dram : dram_timing option;
  e_read : float;  (** J per read access *)
  e_write : float;  (** J per write access *)
  e_activate : float;  (** J per DRAM ACTIVATE (= e_read for SRAM) *)
  e_precharge : float;  (** J per DRAM PRECHARGE *)
  p_leakage : float;  (** W, with sleep-transistor gating if enabled *)
  p_refresh : float;  (** W, DRAM refresh *)
  n_subbanks : int;  (** interleavable horizontal slices *)
  pipeline_stages : int;  (** logic depth proxy used for clocking limits *)
}

val evaluate : spec:Array_spec.t -> org:Org.t -> t option
(** Full metrics for one candidate organization; [None] if invalid. *)

val evaluate_staged :
  staged:Cacti_circuit.Staged.t -> spec:Array_spec.t -> org:Org.t -> t option
(** {!evaluate} against precomputed staged constants
    ([Mat.staged_of_spec spec]); bit-identical to {!evaluate}. *)

val bank_of_metrics :
  staged:Cacti_circuit.Staged.t ->
  spec:Array_spec.t ->
  org:Org.t ->
  Mat.t ->
  Soa_kernel.metrics ->
  t
(** Materialize a bank record from a solved mat and its flat metrics
    (see {!Soa_kernel.metrics_of_mat}); the single constructor behind
    both the scalar path and the columnar kernel. *)

val assemble :
  staged:Cacti_circuit.Staged.t ->
  spec:Array_spec.t ->
  org:Org.t ->
  Mat.t ->
  t
(** The bank-level model on top of a solved mat:
    [bank_of_metrics ... (Soa_kernel.metrics_of_mat ...)]. *)

type bounds = { b_area : float; b_time : float; b_energy : float }
(** Admissible lower bounds on a candidate's final [area], [t_access] and
    [e_read], computed from its geometry alone. *)

val lower_bounds :
  staged:Cacti_circuit.Staged.t ->
  Array_spec.t ->
  Org.t ->
  Mat.geometry ->
  bounds
(** [lower_bounds ~staged spec] stages the per-spec constants and returns
    the per-candidate bound function.  Each bound is provably [<=] the
    metric {!evaluate} would report for that candidate: area counts the
    cell matrix plus the sense-amp strip and control replication (the
    cell matrix alone is organization-invariant, so the sense amps — per
    active column on DRAM — carry all the discrimination); time counts
    H-tree traversal over the minimum bank extent plus the closed-form
    wordline flight and bitline development/charge-share RC; energy
    counts H-tree link energy plus per-mat sensing and DRAM restore.
    All kept strictly conservative against float rounding by a 0.999
    factor. *)

val area_lower_bound :
  Array_spec.t -> Org.t -> Mat.geometry -> float
(** [fun org g -> (lower_bounds ~staged spec org g).b_area] with freshly
    staged constants. *)

type bound_policy = { acctime_pct : float; energy_only : bool }
(** Policy of the branch-and-bound prune (the [?bound] argument of
    {!enumerate_counts}).  A candidate [c] is pruned when, against the
    smallest-area candidate evaluated so far (the champion, of area [A],
    access time [T] and read energy [E]):

    - [c.b_area > A] and [c.b_time > T * (1 + acctime_pct)]; or
    - [energy_only] and [c.b_area > A] and [c.b_time > T] and
      [c.b_energy > E].

    Both rules are sound for the staged selection of Section 2.4
    ({!Cacti.Optimizer.select_result} with the same [max_acctime_pct]): if
    such a [c] survived the final area filter, so would the champion
    (its area is strictly smaller), so the time filter's [best_t] is at
    most [T], which [c] fails; [c] can neither lower [best_area] nor any
    objective normalization it participates in.  The [energy_only] rule
    additionally requires that the objective weighs nothing but dynamic
    read energy — with the champion inside the time filter, a candidate
    worse on area, time and read energy can never attain a strictly
    smaller objective.  It must not be set for any other weighting.

    The prune is only valid when the sweep's consumer applies exactly that
    staged selection; populations consumed whole (e.g. Pareto frontiers or
    [solve_space]) must not pass [?bound]. *)

type fault = Fault_nan | Fault_exn | Fault_force
(** Test-only fault injection: [Fault_nan] poisons the candidate's access
    time with NaN after evaluation, [Fault_exn] raises inside the contained
    region before evaluation, [Fault_force] evaluates the candidate
    normally but bypasses the prunes (for pruning-soundness properties). *)

val reset_stage_memo : unit -> unit
(** Clear the cross-sweep subarray/decoder design memo used by memoized
    kernel sweeps.  Entries are pure functions of their (salt, dims)
    keys, so this is never needed for correctness — it releases memory
    and gives tests a cold-state baseline. *)

val set_fault_hook : (int -> fault option) option -> unit
(** Install (or with [None] clear) a hook consulted once per screened
    candidate, keyed by its position in the post-screen enumeration order.
    Injected candidates bypass the area and bound prunes so the resulting
    [nonfinite] / [raised] counts are identical for every worker count.
    Test-only; the hook must be cleared (and is global, so not reentrant) —
    production code never sets it. *)

val enumerate_counts :
  ?pool:Cacti_util.Pool.t ->
  ?cancel:Cacti_util.Cancel.t ->
  ?prune:float ->
  ?bound:bound_policy ->
  ?mat_cache:(Mat.mat_key -> (unit -> Mat.t option) -> Mat.t option) ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  ?strict:bool ->
  ?kernel:bool ->
  ?screened:((Org.t * Mat.geometry) list * int * int * int) ->
  Array_spec.t ->
  t list * Cacti_util.Diag.counts
(** All valid organizations of the spec, in the deterministic grid order of
    {!Org.candidates}, plus the rejection histogram over every candidate
    considered.

    [pool] fans the candidate evaluations out across domains; without
    prunes the returned list is identical (same elements, same order) for
    any worker count, and with them the staged-selection winner over the
    list is.  [prune], when set to the optimizer's [max_area_pct], skips
    candidates whose cheap area lower bound already exceeds the best area
    seen so far by more than that fraction — such candidates can never
    survive the optimizer's area filter, so every solution the staged
    selection of Section 2.4 can return is unaffected.  [bound] extends
    the prune to candidates that would survive the area filter but
    provably cannot displace the selected solution (see {!bound_policy});
    only pass it when the consumer is exactly that staged selection.

    [mat_cache], keyed by {!Mat.mat_key}, memoizes the mat circuit
    solution shared by candidates with identical subarray geometry (within
    this sweep and, through {!Cacti.Solve_cache}, across solves on the
    same technology).  The cached value is the same pure function of the
    key, so results are bit-identical with or without it.

    [kernel] (default true) evaluates the sweep through the columnar
    {!Soa_kernel} batch path: survivors are flattened into float64
    parameter columns, bounds and metrics are computed over chunk ranges,
    distinct subarray/decoder sub-stages are solved once per sweep, and
    survivors materialize into records only at the end.  [~kernel:false]
    selects the per-candidate scalar reference path.  Both paths are
    bit-identical: same banks in the same order (at one worker; same
    staged-selection winner at any worker count), same counts.

    [screened] supplies a precomputed screen result
    ([(survivors, n_total, n_geometry, n_page)], as returned by
    {!Mat.screen} / {!Mat.screen_of_tree} for this spec and grid bounds)
    so incremental re-solves skip re-screening.

    Per-candidate evaluation is fault-contained: an exception escaping the
    circuit model, or a non-finite / negative delay, energy, area or power,
    rejects that candidate (counted under [raised] / [nonfinite]) instead of
    killing the sweep.  [strict] (default false) disables the containment
    and lets the first such failure propagate.

    [cancel] is polled at partition boundaries — once per evaluation chunk
    on the kernel path, once per candidate on the scalar path, every few
    hundred candidates inside the column build — {e outside} the fault
    containment, so a fired token aborts the whole sweep with
    {!Cacti_util.Cancel.Cancelled} within milliseconds instead of being
    counted as a candidate fault.  A token that never fires changes
    nothing: solutions and counts are bit-identical to a run without
    one. *)

val enumerate :
  ?pool:Cacti_util.Pool.t ->
  ?cancel:Cacti_util.Cancel.t ->
  ?prune:float ->
  ?bound:bound_policy ->
  ?mat_cache:(Mat.mat_key -> (unit -> Mat.t option) -> Mat.t option) ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  ?strict:bool ->
  ?kernel:bool ->
  ?screened:((Org.t * Mat.geometry) list * int * int * int) ->
  Array_spec.t ->
  t list
(** {!enumerate_counts} without the histogram. *)

type sweep = {
  sw_spec : Array_spec.t;
  sw_staged : Cacti_circuit.Staged.t;
  sw_soa : Soa_kernel.t;
  sw_counts : Cacti_util.Diag.counts;
}
(** A completed kernel sweep still in columnar form: every evaluated
    candidate's metrics live in the {!Soa_kernel.t} result columns, with
    records not yet materialized.  Consumers that only need an argmin
    (e.g. {!Cacti.Optimizer.select_soa_result}) can scan the columns and
    materialize just the winner via {!sweep_bank}. *)

val enumerate_soa :
  ?pool:Cacti_util.Pool.t ->
  ?cancel:Cacti_util.Cancel.t ->
  ?prune:float ->
  ?bound:bound_policy ->
  ?mat_cache:(Mat.mat_key -> (unit -> Mat.t option) -> Mat.t option) ->
  ?max_ndwl:int ->
  ?max_ndbl:int ->
  ?strict:bool ->
  ?screened:((Org.t * Mat.geometry) list * int * int * int) ->
  Array_spec.t ->
  sweep
(** {!enumerate_counts} with [~kernel:true], returning the sweep in
    columnar form instead of materializing every surviving bank record.
    [materialize_all]-ing the result (what {!enumerate_counts} does)
    yields the exact list the scalar path produces. *)

val sweep_bank : sweep -> int -> t
(** Materialize candidate [i] of the sweep (its position in the screened
    enumeration order) into a full bank record; bit-identical to the
    record the scalar path builds for that candidate.  Raises
    [Invalid_argument] if the candidate did not evaluate (status is not
    [st_ok]). *)

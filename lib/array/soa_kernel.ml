open Cacti_tech
open Cacti_circuit

(* Structure-of-arrays batch store for the staged solver.

   The hierarchical screen's surviving candidates are flattened into
   columns: one float64 Bigarray per geometry/organization parameter the
   bank-level formulas consume, plus result columns for the lower bounds
   and every final bank metric.  The evaluation loop in
   {!Cacti_array.Bank} then runs branch-free float math over chunked
   column ranges instead of allocating per-candidate closures and
   records; a surviving candidate only materializes into a [Bank.t] once,
   after the whole sweep.

   All parameter columns store [float_of_int] of exact integer quantities
   well inside the 2^53 mantissa, and all result columns round-trip IEEE
   float64 values losslessly, so a kernel sweep is bit-identical to the
   scalar reference path. *)

type col = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Bank-level metrics of one candidate, as a flat all-float record (no
   boxing: OCaml unboxes float-only records).  This is the full output of
   the bank assembly minus the fields recoverable from (spec, org, mat);
   the DRAM interface timings are 0 for SRAM, where they are never read. *)
type metrics = {
  m_width : float;
  m_height : float;
  m_area : float;
  m_area_efficiency : float;
  m_t_access : float;
  m_t_random_cycle : float;
  m_t_interleave : float;
  m_e_read : float;
  m_e_write : float;
  m_e_activate : float;
  m_e_precharge : float;
  m_p_leakage : float;
  m_p_refresh : float;
  m_t_rcd : float;
  m_t_cas : float;
  m_t_ras : float;
  m_t_rp : float;
  m_t_rc : float;
  m_t_rrd : float;
}

let n_metric_cols = 19

(* Candidate status bytes written by the evaluation loop. *)
let st_pending = '\000'
let st_ok = '\001'
let st_area_pruned = '\002'
let st_bound_pruned = '\003'
let st_nonviable = '\004'
let st_nonfinite = '\005'
let st_raised = '\006'

type t = {
  n : int;
  orgs : Org.t array;
  geos : Mat.geometry array;
  eff_deg : int array;  (** effective bitline-mux degree (1 for DRAM) *)
  f_n_ctl : col;  (** control-block inverter count *)
  f_out_bits : col;
  f_n_mats : col;
  f_n_sa : col;  (** sense amps per mat *)
  f_wspan : col;  (** bank width floor, cells *)
  f_hspan : col;  (** bank height floor, cells *)
  f_line_cells : col;  (** wordline span, cells *)
  f_rows : col;  (** rows per subarray *)
  f_sensed_pa : col;  (** columns sensed per access *)
  f_mats_x : col;  (** active mats *)
  b_area : col;  (** result: area lower bound *)
  b_time : col;  (** result: access-time lower bound *)
  b_energy : col;  (** result: read-energy lower bound *)
  res : col array;
      (** result: [n_metric_cols] metric columns, in [metrics] field
          order (an array of small per-metric columns rather than one
          [n]x19 matrix: block allocations past the malloc mmap
          threshold are returned to the OS on free, so a fresh matrix
          per sweep would repay its page faults every solve) *)
  status : Bytes.t;
  mats : Mat.t option array;  (** solved mats of evaluated candidates *)
}

let fcol n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let build ?(cancel = Cacti_util.Cancel.never) ~is_dram survivors =
  let orgs = Array.of_list (List.map fst survivors) in
  let geos = Array.of_list (List.map snd survivors) in
  let n = Array.length orgs in
  let t =
    {
      n;
      orgs;
      geos;
      eff_deg = Array.make n 1;
      f_n_ctl = fcol n;
      f_out_bits = fcol n;
      f_n_mats = fcol n;
      f_n_sa = fcol n;
      f_wspan = fcol n;
      f_hspan = fcol n;
      f_line_cells = fcol n;
      f_rows = fcol n;
      f_sensed_pa = fcol n;
      f_mats_x = fcol n;
      b_area = fcol n;
      b_time = fcol n;
      b_energy = fcol n;
      res = Array.init n_metric_cols (fun _ -> fcol (max 1 n));
      status = Bytes.make (max 1 n) st_pending;
      mats = Array.make (max 1 n) None;
    }
  in
  for i = 0 to n - 1 do
    if i land 511 = 0 then Cacti_util.Cancel.check cancel;
    let org = orgs.(i) and g = geos.(i) in
    let mats_x = Org.mats_x org and mats_y = Org.mats_y org in
    (* Each scalar below is [float_of_int] of the exact integer expression
       the record-based bound evaluation uses, so feeding the bounds
       kernel from these columns is bit-identical to feeding it from the
       (org, geometry) records. *)
    let n_wordlines = g.Mat.g_rows_sub * g.Mat.g_vert in
    let n_ctl = 60 + (2 * Cacti_util.Floatx.clog2 (max 2 n_wordlines)) in
    t.eff_deg.(i) <- (if is_dram then 1 else org.Org.deg_bl_mux);
    t.f_n_ctl.{i} <- float_of_int n_ctl;
    t.f_out_bits.{i} <- float_of_int g.Mat.g_out_bits;
    t.f_n_mats.{i} <- float_of_int (Org.n_mats org);
    t.f_n_sa.{i} <-
      float_of_int
        (if is_dram then g.Mat.g_horiz * g.Mat.g_cols_sub else g.Mat.g_sensed);
    t.f_wspan.{i} <-
      float_of_int (mats_x * g.Mat.g_horiz * g.Mat.g_cols_sub);
    t.f_hspan.{i} <- float_of_int (mats_y * g.Mat.g_vert * g.Mat.g_rows_sub);
    t.f_line_cells.{i} <- float_of_int (g.Mat.g_horiz * g.Mat.g_cols_sub);
    t.f_rows.{i} <- float_of_int g.Mat.g_rows_sub;
    t.f_sensed_pa.{i} <- float_of_int g.Mat.g_sensed_per_access;
    t.f_mats_x.{i} <- float_of_int mats_x
  done;
  t

let set_metrics t i (m : metrics) =
  let r = t.res in
  r.(0).{i} <- m.m_width;
  r.(1).{i} <- m.m_height;
  r.(2).{i} <- m.m_area;
  r.(3).{i} <- m.m_area_efficiency;
  r.(4).{i} <- m.m_t_access;
  r.(5).{i} <- m.m_t_random_cycle;
  r.(6).{i} <- m.m_t_interleave;
  r.(7).{i} <- m.m_e_read;
  r.(8).{i} <- m.m_e_write;
  r.(9).{i} <- m.m_e_activate;
  r.(10).{i} <- m.m_e_precharge;
  r.(11).{i} <- m.m_p_leakage;
  r.(12).{i} <- m.m_p_refresh;
  r.(13).{i} <- m.m_t_rcd;
  r.(14).{i} <- m.m_t_cas;
  r.(15).{i} <- m.m_t_ras;
  r.(16).{i} <- m.m_t_rp;
  r.(17).{i} <- m.m_t_rc;
  r.(18).{i} <- m.m_t_rrd

(* Named views of the metric columns the staged selection reads; the
   indices mirror [set_metrics] above — keep in sync. *)
let col_area t = t.res.(2)
let col_t_access t = t.res.(4)
let col_t_random_cycle t = t.res.(5)
let col_t_interleave t = t.res.(6)
let col_e_read t = t.res.(7)
let col_p_leakage t = t.res.(11)
let col_p_refresh t = t.res.(12)

let get_metrics t i : metrics =
  let r = t.res in
  {
    m_width = r.(0).{i};
    m_height = r.(1).{i};
    m_area = r.(2).{i};
    m_area_efficiency = r.(3).{i};
    m_t_access = r.(4).{i};
    m_t_random_cycle = r.(5).{i};
    m_t_interleave = r.(6).{i};
    m_e_read = r.(7).{i};
    m_e_write = r.(8).{i};
    m_e_activate = r.(9).{i};
    m_e_precharge = r.(10).{i};
    m_p_leakage = r.(11).{i};
    m_p_refresh = r.(12).{i};
    m_t_rcd = r.(13).{i};
    m_t_cas = r.(14).{i};
    m_t_ras = r.(15).{i};
    m_t_rp = r.(16).{i};
    m_t_rc = r.(17).{i};
    m_t_rrd = r.(18).{i};
  }

(* The bank-level model on top of a solved mat: H-tree distribution,
   timings, energies, leakage, refresh and area.  Pure float math against
   the staged constants — no circuit design happens here.  This is the
   single implementation behind both the scalar [Bank.assemble] and the
   columnar kernel sweep. *)
let metrics_of_mat ~(staged : Staged.t) ~spec ~(org : Org.t) (mat : Mat.t) =
  let { Array_spec.output_bits; _ } = spec in
  let is_dram = staged.Staged.is_dram in
  let cell = staged.Staged.cell in
  let mats_x = Org.mats_x org and mats_y = Org.mats_y org in
  let n_mats = mats_x * mats_y in
  (* The page constraint is part of [Mat.geometry], so any surviving
     mat already satisfies it. *)
  let bank_w = float_of_int mats_x *. mat.Mat.width in
  let bank_h = float_of_int mats_y *. mat.Mat.height in
  let repeater = staged.Staged.repeater in
  let htree = Htree.plan ~repeater ~bank_width:bank_w ~bank_height:bank_h in
  let addr_bits = Array_spec.addr_bits spec + 8 in
  let addr_link = Htree.link htree ~bits:addr_bits ~activity:1.0 () in
  let data_out_link = Htree.link htree ~bits:output_bits ~activity:0.75 () in
  let data_in_link = Htree.link htree ~bits:output_bits ~activity:0.75 () in
  (* Port receivers/drivers at the bank boundary. *)
  let t_port = staged.Staged.t_port in
  let t_htree_in = addr_link.Stage.delay +. t_port in
  let t_htree_out = data_out_link.Stage.delay +. t_port in
  let t_access =
    t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
    +. mat.Mat.t_sense +. mat.Mat.t_column_out +. t_htree_out
  in
  let t_local_cycle =
    mat.Mat.t_wordline +. mat.Mat.t_bitline +. mat.Mat.t_sense
    +. mat.Mat.t_restore +. mat.Mat.t_precharge
  in
  let t_random_cycle = t_local_cycle in
  let t_htree_stage = (t_htree_in +. t_htree_out) /. 6. in
  let t_interleave =
    max
      (mat.Mat.t_bitline +. mat.Mat.t_sense +. mat.Mat.t_column_out)
      t_htree_stage
  in
  let active_mats = mats_x in
  let fam = float_of_int active_mats in
  (* Energies. *)
  let e_activate =
    addr_link.Stage.energy +. (fam *. mat.Mat.e_row_activate)
  in
  let e_col_read =
    (fam *. mat.Mat.e_column_read) +. data_out_link.Stage.energy
  in
  let e_col_write =
    (fam *. mat.Mat.e_column_write) +. data_in_link.Stage.energy
  in
  let e_precharge = fam *. mat.Mat.e_precharge in
  let e_read, e_write =
    if is_dram then
      (* SRAM-like interface with auto-precharge: a random read costs
         ACTIVATE + column read + PRECHARGE. *)
      ( e_activate +. e_col_read +. e_precharge,
        e_activate +. e_col_write +. e_precharge )
    else (e_activate +. e_col_read, e_activate +. e_col_write)
  in
  (* Leakage: mats (sleep transistors halve the non-active ones) +
     H-tree repeaters. *)
  let sleep_factor =
    if spec.Array_spec.sleep_tx then
      (fam +. (float_of_int (n_mats - active_mats) *. 0.5))
      /. float_of_int n_mats
    else 1.0
  in
  let p_leakage =
    (float_of_int n_mats *. mat.Mat.leakage *. sleep_factor)
    +. addr_link.Stage.leakage +. data_out_link.Stage.leakage
    +. data_in_link.Stage.leakage
  in
  (* Refresh. *)
  let p_refresh =
    if not is_dram then 0.
    else
      let wordlines_per_mat =
        mat.Mat.subarray.Subarray.rows
        * (mat.Mat.n_subarrays / mat.Mat.horiz_subarrays)
      in
      let n_wordlines = wordlines_per_mat * mats_y in
      (* Burst refresh shares command/decode overhead across rows and
         skips the column circuitry entirely. *)
      let refresh_efficiency = 0.75 in
      let e_per_refresh =
        refresh_efficiency
        *. (fam *. (mat.Mat.e_row_activate +. mat.Mat.e_precharge))
      in
      float_of_int n_wordlines *. e_per_refresh /. cell.Cell.retention_time
  in
  (* DRAM interface timings. *)
  let m_t_rcd, m_t_cas, m_t_ras, m_t_rp, m_t_rc, m_t_rrd =
    if not is_dram then (0., 0., 0., 0., 0., 0.)
    else
      let t_rcd =
        t_htree_in +. mat.Mat.t_row_path +. mat.Mat.t_bitline
        +. mat.Mat.t_sense
      in
      let t_cas = mat.Mat.t_column_out +. t_htree_out in
      let t_ras =
        mat.Mat.t_row_path +. mat.Mat.t_bitline +. mat.Mat.t_sense
        +. mat.Mat.t_restore
      in
      let t_rp = mat.Mat.t_precharge +. (0.3 *. mat.Mat.t_wordline) in
      (t_rcd, t_cas, t_ras, t_rp, t_ras +. t_rp, t_interleave)
  in
  (* Area. *)
  let htree_silicon =
    addr_link.Stage.area +. data_out_link.Stage.area
    +. data_in_link.Stage.area
  in
  let area = ((bank_w *. bank_h) +. htree_silicon) *. 1.08 in
  let cell_area_total =
    float_of_int n_mats
    *. float_of_int mat.Mat.n_subarrays
    *. Subarray.cell_area mat.Mat.subarray
  in
  {
    m_width = bank_w;
    m_height = bank_h;
    m_area = area;
    m_area_efficiency = cell_area_total /. area;
    m_t_access = t_access;
    m_t_random_cycle = t_random_cycle;
    m_t_interleave = t_interleave;
    m_e_read = e_read;
    m_e_write = e_write;
    m_e_activate = e_activate;
    m_e_precharge = e_precharge;
    m_p_leakage = p_leakage;
    m_p_refresh = p_refresh;
    m_t_rcd;
    m_t_cas;
    m_t_ras;
    m_t_rp;
    m_t_rc;
    m_t_rrd;
  }

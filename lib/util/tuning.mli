(** Process-level runtime tuning for solver entry points. *)

val solver_gc : unit -> unit
(** Size the GC for design-space sweeps: a 2 Mw minor heap (the cold
    sweep's short-lived circuit intermediates then die young instead of
    being promoted) and [space_overhead = 200].  Affects scheduling only,
    never results.  Call it once at process start from executables whose
    workload is dominated by solves; the library itself never changes
    global GC policy. *)

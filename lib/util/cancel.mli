(** Cooperative cancellation tokens for long-running solves.

    A token is the one-way signal "stop working on this request": it can be
    fired explicitly ({!cancel}), fire itself when a wall-clock deadline
    passes, or inherit cancellation from a parent token (a server-wide
    drain token parenting every in-flight request's deadline token).  The
    solver polls the token at partition boundaries — {!check} raises
    {!Cancelled} once the token has fired — so an abandoned design-space
    sweep unwinds within one chunk of candidates instead of burning a
    worker to completion.

    Tokens are thread- and domain-safe: the flag is an [Atomic.t] and the
    deadline is immutable, so {!check} from any number of pool domains is
    race-free.  A poll costs one atomic load plus (for deadline tokens)
    one [Unix.gettimeofday]; {!never} short-circuits to the atomic load
    alone, so un-deadlined solves pay nothing measurable. *)

type t

exception Cancelled of string
(** The token's {e reason} tag (e.g. ["deadline"], ["drain"]), stable and
    machine-readable so the catcher can map it to the right typed
    diagnostic. *)

val never : t
(** The inert token: never fires.  The default everywhere a [?cancel] is
    accepted. *)

val create : ?reason:string -> ?deadline_at:float -> ?parent:t -> unit -> t
(** A fresh token.  [reason] (default ["cancelled"]) tags {!Cancelled}
    when {e this} token fires.  [deadline_at] is an absolute
    [Unix.gettimeofday] instant after which the token counts as fired
    without anyone calling {!cancel}.  [parent] chains tokens: this token
    also counts as fired whenever the parent is, carrying the {e parent's}
    reason. *)

val cancel : t -> unit
(** Fire the token (idempotent).  Polls already in flight observe it at
    their next {!check}. *)

val why : t -> string option
(** [Some reason] once the token (or an ancestor, or a passed deadline)
    has fired, [None] otherwise. *)

val cancelled : t -> bool

val check : t -> unit
(** Raise [Cancelled reason] if the token has fired; return otherwise.
    This is the solver's poll point. *)

type t = { jobs : int }

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  { jobs }

let serial = { jobs = 1 }
let jobs t = t.jobs

(* One shared chunk counter; workers (the spawned domains plus the calling
   domain) repeatedly claim the next unprocessed chunk, so load imbalance
   between cheap and expensive elements evens out without per-element
   synchronization.  Results land at their input index, which keeps the
   output order — and therefore every downstream tie-break — identical to
   a serial run. *)
let run_chunked ~chunk t n body =
  if n = 0 then ()
  else
    let chunk = max 1 chunk in
    let n_chunks = (n + chunk - 1) / chunk in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then (
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          for i = lo to hi - 1 do
            body i
          done;
          loop ())
      in
      loop ()
    in
    let n_helpers = min (t.jobs - 1) (n_chunks - 1) in
    if n_helpers <= 0 then worker ()
    else
      let helpers = Array.init n_helpers (fun _ -> Domain.spawn worker) in
      (* Always join every helper, then re-raise the first failure unwrapped
         so callers see the same exception a serial run would. *)
      let first_exn = ref None in
      let record e = if !first_exn = None then first_exn := Some e in
      (try worker () with e -> record e);
      Array.iter
        (fun d -> try Domain.join d with e -> record e)
        helpers;
      match !first_exn with Some e -> raise e | None -> ()

let parallel_map ?(chunk = 32) t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let out = Array.make n None in
      run_chunked ~chunk t n (fun i -> out.(i) <- Some (f input.(i)));
      Array.fold_right
        (fun r acc ->
          match r with Some v -> v :: acc | None -> assert false)
        out []

let parallel_filter_map ?(chunk = 32) t f xs =
  match xs with
  | [] -> []
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let out = Array.make n None in
      run_chunked ~chunk t n (fun i -> out.(i) <- f input.(i));
      Array.fold_right
        (fun r acc -> match r with Some v -> v :: acc | None -> acc)
        out []

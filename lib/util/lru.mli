(** Mutex-guarded LRU memo table.

    One shared implementation for every cache in the tree: the
    selected-bank and mat-sub-solution memos, screen contexts, and the
    serve layer's per-shard response cache.  All operations are
    thread-safe; values must be treated as immutable by callers (a
    reference handed out under the lock stays valid after release). *)

type stats = { hits : int; misses : int }

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** Fresh unbounded table; [size] is the initial hashtable sizing hint. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Counted lookup: bumps [hits] or [misses] and refreshes recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Uncounted presence probe: neither the hit/miss counters nor the
    recency order move. *)

val publish : ('k, 'v) t -> 'k -> 'v -> 'v
(** First store wins: if the key is already present, the existing value
    is returned (and touched) and the argument discarded — two racing
    misses of a deterministic compute both publish the identical value
    and later hits share one copy.  The adopting lookup is not counted
    as a hit. *)

val memoize : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find] + compute-on-miss + [publish]. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Unconditional replace (last store wins), for entries updated in
    place. *)

val stats : ('k, 'v) t -> stats
val size : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int option

val set_capacity : ('k, 'v) t -> what:string -> int option -> unit
(** Cap the table at [Some n] entries (evicting LRU-first immediately if
    over), or lift the cap with [None].  Raises [Invalid_argument] citing
    [what] on a negative cap. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and reset the hit/miss counters. *)

val dump : ('k, 'v) t -> ('k * 'v) list
(** Entries in least-recently-used-first order, so re-inserting in dump
    order reconstructs the recency order. *)

val restore : ('k, 'v) t -> ('k * 'v) list -> unit
(** Insert entries that are not already present, in list order. *)

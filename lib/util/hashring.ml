(* Consistent-hash ring with virtual nodes.

   Routes string keys (request fingerprints) to one of [n] shards so that
   (a) load spreads near-uniformly — each shard owns [vnodes] points on
   the ring, smoothing the variance a single point per shard would have —
   and (b) changing the shard count moves only the keys that must move:
   the ring for n+1 shards is the ring for n shards plus shard n's own
   points, so a key changes owner only if one of the new points landed
   between the key and its previous successor.  About 1/(n+1) of the key
   space remaps, versus (a) everything for modular hashing.

   Positions come from MD5 ([Digest.string]) of "shard/vnode" labels, and
   key lookups hash the key the same way, so routing is a pure function
   of (n, vnodes, key): identical across processes, restarts and
   architectures — a warm snapshot saved by one fleet peer lands on the
   same shard when another peer loads it.  OCaml's polymorphic
   [Hashtbl.hash] is also deterministic but folds only a prefix of long
   strings; fingerprints share long common prefixes, so MD5 it is. *)

type t = {
  n_shards : int;
  vnodes : int;
  points : int array;  (** sorted ring positions *)
  owners : int array;  (** [owners.(i)] owns [points.(i)] *)
}

(* First 62 bits of the MD5 digest as a non-negative int.  62, not 63:
   [Bytes.get_int64_le] is signed, masking to 62 bits keeps the result
   positive on every platform without Int64 boxing in the comparison
   loop. *)
let hash_key s =
  let d = Digest.string s in
  let raw = Bytes.get_int64_le (Bytes.unsafe_of_string d) 0 in
  Int64.to_int (Int64.logand raw 0x3FFF_FFFF_FFFF_FFFFL)

let position ~shard ~vnode =
  hash_key (Printf.sprintf "shard-%d/vnode-%d" shard vnode)

let create ?(vnodes = 64) n =
  if n < 1 then invalid_arg "Hashring.create: need at least one shard";
  if vnodes < 1 then invalid_arg "Hashring.create: need at least one vnode";
  let pts =
    Array.init (n * vnodes) (fun i ->
        let shard = i / vnodes and vnode = i mod vnodes in
        (position ~shard ~vnode, shard))
  in
  (* Ties (MD5 collisions across labels — astronomically unlikely but
     cheap to pin down) break toward the lower shard index so the ring is
     a deterministic function of (n, vnodes) alone. *)
  Array.sort compare pts;
  {
    n_shards = n;
    vnodes;
    points = Array.map fst pts;
    owners = Array.map snd pts;
  }

let shards t = t.n_shards
let vnodes t = t.vnodes

(* First ring point >= h, wrapping past the last point to the first. *)
let successor t h =
  let lo = ref 0 and hi = ref (Array.length t.points) in
  (* invariant: points.(lo-1) < h <= points.(hi) (with sentinels) *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = Array.length t.points then 0 else !lo

let lookup t key =
  if t.n_shards = 1 then 0 else t.owners.(successor t (hash_key key))

(** Open-addressing int -> int hash table specialized for the simulator's
    coherence directory: non-negative line-index keys, non-zero values,
    no boxing anywhere on the query path.

    Compared to [(int, int) Hashtbl.t] this avoids the polymorphic hash,
    the per-bucket cons cells and the [Not_found] control flow — a lookup
    or update is a few array probes.  Deletion uses backward-shift
    compaction (no tombstones), so the table never accumulates dead slots:
    [length] is exactly the number of live bindings and the load factor
    only reflects live data.

    A value of [0] means "absent" by convention: [set t k 0] removes the
    binding, and [get t k] returns [0] for missing keys.  This makes the
    bitmask-directory use-case (mask 0 = no sharers = no entry) leak-free
    by construction. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a hint for the initial number of bindings held without
    rehashing (rounded up to a power of two; default 16). *)

val get : t -> int -> int
(** [get t k] is the value bound to [k], or [0] when absent.  [k] must be
    non-negative. *)

val set : t -> int -> int -> unit
(** [set t k v] binds [k] to [v]; [v = 0] removes the binding (and
    compacts the probe chain).  [k] must be non-negative. *)

val remove : t -> int -> unit
(** [remove t k] = [set t k 0]. *)

val mem : t -> int -> bool

val length : t -> int
(** Number of live (non-zero) bindings — exact, O(1). *)

val capacity : t -> int
(** Current slot-array size (for load-factor inspection in tests). *)

val iter : (int -> int -> unit) -> t -> unit
(** Iterates live bindings in unspecified order.  Not used on the
    simulator's hot path — intended for end-of-run audits. *)

val clear : t -> unit

(** Small floating-point helpers shared across the modeling code. *)

exception Non_finite of string
(** Raised by the {!finite} guards; the payload names the offending
    quantity.  Contained (and counted as [nonfinite]) by the design-space
    sweep unless it runs in strict mode. *)

val finite : what:string -> float -> float
(** Identity on finite floats; raises {!Non_finite} naming [what] on NaN or
    ±∞.  Used at the circuit/array boundary so degenerate math is caught
    where it happens instead of poisoning downstream comparisons. *)

val finite_pos : what:string -> float -> float
(** Like {!finite} but additionally rejects negative values (delays,
    energies, areas and powers are physical and must be ≥ 0). *)

val log2 : float -> float

val clog2 : int -> int
(** [clog2 n] is the ceiling of log2 of [n]; [clog2 1 = 0]. [n] must be
    positive. *)

val is_pow2 : int -> bool
val pow2_ge : int -> int
(** Smallest power of two greater than or equal to a positive [n]. *)

val clamp : lo:float -> hi:float -> float -> float

val rel_err : actual:float -> model:float -> float
(** [(model - actual) / actual]; the sign convention used by the paper's
    validation tables (negative = model underestimates). *)

val approx : ?tol:float -> float -> float -> bool
(** Relative comparison with default tolerance [1e-9]. *)

val sum : float list -> float
val mean : float list -> float
val geomean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on empty. *)

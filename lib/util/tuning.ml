(* A cold design-space sweep allocates ~5M minor words of short-lived
   circuit intermediates per solve; the stock 256 Kw minor heap forces
   hundreds of minor collections and enough promotion to trigger several
   major slices inside one batch.  A larger nursery plus a laxer
   space-overhead lets the sweep's garbage die young, measured at ~15%
   on the solve benchmark.  Process-level policy, so applied by the
   entry points (CLIs, server, benchmarks) — never by the library. *)
let solver_gc () =
  Gc.set
    {
      (Gc.get ()) with
      Gc.minor_heap_size = 2 * 1024 * 1024;
      space_overhead = 200;
    }

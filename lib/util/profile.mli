(** Opt-in wall-clock phase accounting.

    A process-wide registry of named time accumulators.  Profiling is off by
    default and {!time} then costs a single atomic load; when enabled (the
    [cacti_cli --profile] flag) each timed region adds its elapsed wall time
    and a call count to its phase under a mutex, so regions may be entered
    concurrently from several domains. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated phases (does not change the enabled flag). *)

val record : string -> float -> unit
(** [record phase seconds] adds one call of [seconds] to [phase],
    regardless of the enabled flag. *)

val time : string -> (unit -> 'a) -> 'a
(** [time phase f] runs [f ()]; when profiling is enabled its wall time is
    added to [phase] (also on exception). *)

val summary : unit -> (string * float * int) list
(** [(phase, total_seconds, calls)] rows, largest total first. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  component : string;
  reason : string;
  message : string;
}

let make severity ~component ~reason message =
  { severity; component; reason; message }

let info ~component ~reason message = make Info ~component ~reason message
let warning ~component ~reason message = make Warning ~component ~reason message
let error ~component ~reason message = make Error ~component ~reason message

let errorf ~component ~reason fmt =
  Printf.ksprintf (error ~component ~reason) fmt

let warningf ~component ~reason fmt =
  Printf.ksprintf (warning ~component ~reason) fmt

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let to_string d =
  Printf.sprintf "%s[%s/%s]: %s"
    (severity_to_string d.severity)
    d.component d.reason d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)
let render ds = String.concat "\n" (List.map to_string ds)

type counts = {
  candidates : int;
  evaluated : int;
  geometry_rejected : int;
  page_rejected : int;
  area_pruned : int;
  bound_pruned : int;
  nonviable : int;
  nonfinite : int;
  raised : int;
}

let zero_counts =
  {
    candidates = 0;
    evaluated = 0;
    geometry_rejected = 0;
    page_rejected = 0;
    area_pruned = 0;
    bound_pruned = 0;
    nonviable = 0;
    nonfinite = 0;
    raised = 0;
  }

let add_counts a b =
  {
    candidates = a.candidates + b.candidates;
    evaluated = a.evaluated + b.evaluated;
    geometry_rejected = a.geometry_rejected + b.geometry_rejected;
    page_rejected = a.page_rejected + b.page_rejected;
    area_pruned = a.area_pruned + b.area_pruned;
    bound_pruned = a.bound_pruned + b.bound_pruned;
    nonviable = a.nonviable + b.nonviable;
    nonfinite = a.nonfinite + b.nonfinite;
    raised = a.raised + b.raised;
  }

let faults c = c.nonfinite + c.raised

let counts_to_string c =
  Printf.sprintf
    "%d candidates: %d evaluated; rejected: geometry %d, page %d, \
     area-pruned %d, bound-pruned %d, nonviable %d, nonfinite %d, raised %d"
    c.candidates c.evaluated c.geometry_rejected c.page_rejected c.area_pruned
    c.bound_pruned c.nonviable c.nonfinite c.raised

let pp_counts ppf c = Format.pp_print_string ppf (counts_to_string c)

type summary = { sweeps : counts; cache_hits : int; notes : t list }

let empty_summary = { sweeps = zero_counts; cache_hits = 0; notes = [] }

let merge_summary a b =
  {
    sweeps = add_counts a.sweeps b.sweeps;
    cache_hits = a.cache_hits + b.cache_hits;
    notes = a.notes @ b.notes;
  }

let summary_to_string s =
  Printf.sprintf "%s; cache hits %d"
    (counts_to_string s.sweeps)
    s.cache_hits

let pp_summary ppf s = Format.pp_print_string ppf (summary_to_string s)

let exit_ok = 0
let exit_usage = 1
let exit_invalid_spec = 2
let exit_no_solution = 3

(* splitmix64, Steele et al., "Fast splittable pseudorandom number
   generators".

   The 64-bit state and output are kept as two 32-bit limbs in native
   (immediate) ints rather than as [int64]: without flambda every [Int64]
   operation allocates a box, and the simulator draws several numbers per
   simulated memory reference — the boxed version dominated the engine's
   minor-heap traffic.  The limb arithmetic below reproduces the 64-bit
   wrapping semantics exactly, so the output stream is bit-identical to
   the [int64] formulation (pinned by tests and by the engine's golden
   statistics). *)

type t = {
  mutable s_hi : int;  (** state, high 32 bits *)
  mutable s_lo : int;  (** state, low 32 bits *)
  mutable z_hi : int;  (** last output, high 32 bits *)
  mutable z_lo : int;  (** last output, low 32 bits *)
}

let create seed =
  {
    s_hi = Int64.to_int (Int64.shift_right_logical seed 32);
    s_lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    z_hi = 0;
    z_lo = 0;
  }

let copy t = { s_hi = t.s_hi; s_lo = t.s_lo; z_hi = t.z_hi; z_lo = t.z_lo }

(* One splitmix64 step; the 64-bit output lands in [z_hi]/[z_lo].

   The arithmetic itself runs on local [int64] values: the compiler's
   local unboxing turns these into plain 64-bit machine ops, and because
   nothing of type [int64] is stored to a field or returned — the limbs
   cross the function boundary as immediate ints — the step allocates
   nothing.  (A [mutable state : int64] field would force one fresh box
   per step just to store the new state.) *)
let step t =
  let s =
    Int64.add
      (Int64.logor
         (Int64.shift_left (Int64.of_int t.s_hi) 32)
         (Int64.of_int t.s_lo))
      0x9E3779B97F4A7C15L
  in
  t.s_hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.s_lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z =
    Int64.mul
      (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  t.z_hi <- Int64.to_int (Int64.shift_right_logical z 32);
  t.z_lo <- Int64.to_int (Int64.logand z 0xFFFFFFFFL)

let next_int64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.z_hi) 32) (Int64.of_int t.z_lo)

let bits53 t =
  step t;
  (t.z_hi lsl 21) lor (t.z_lo lsr 11)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  step t;
  if bound <= 0x40000000 then begin
    (* (z >>> 1) mod bound without materializing the 63-bit value (it
       does not fit a non-negative native int): reduce the two halves.
       For bound <= 2^30 the product below stays well inside 62 bits. *)
    let hi = t.z_hi lsr 1 in
    let lo = ((t.z_hi land 1) lsl 31) lor (t.z_lo lsr 1) in
    (((hi mod bound) * (0x100000000 mod bound)) + lo) mod bound
  end
  else
    Int64.to_int
      (Int64.rem
         (Int64.logor
            (Int64.shift_left (Int64.of_int t.z_hi) 31)
            (Int64.of_int (t.z_lo lsr 1)))
         (Int64.of_int bound))

(* 53 random bits mapped to [0,1).  The bits value is < 2^53, so
   [float_of_int] is exact and agrees with [Int64.to_float] of the same
   quantity.  The body is restated inline in the float-drawing entry
   points below: a call returning [float] boxes its result without
   flambda, and [bernoulli]/[geometric] sit on the simulator's
   per-reference path. *)
let unit_float t =
  step t;
  float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11))
  *. (1.0 /. 9007199254740992.0)

let float t bound =
  step t;
  float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11))
  *. (1.0 /. 9007199254740992.0)
  *. bound

let bool t =
  step t;
  t.z_lo land 1 = 1

let bernoulli t p =
  step t;
  float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11))
  *. (1.0 /. 9007199254740992.0)
  < p

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else begin
    step t;
    let u =
      float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11))
      *. (1.0 /. 9007199254740992.0)
    in
    (* Not the polymorphic [max]: that call boxes its float argument. *)
    let u = if u < 1e-300 then 1e-300 else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))
  end

(* [geometric] with the loop-invariant [log (1. -. p)] hoisted out by the
   caller: one libm call instead of two per draw, identical results.  Only
   meaningful for p < 1 (the caller owns the p = 1 short-circuit). *)
let geometric_log1mp t ~log1mp =
  step t;
  let u =
    float_of_int ((t.z_hi lsl 21) lor (t.z_lo lsr 11))
    *. (1.0 /. 9007199254740992.0)
  in
  let u = if u < 1e-300 then 1e-300 else u in
  int_of_float (Float.floor (log u /. log1mp))

let exponential t mean =
  let u = max (unit_float t) 1e-300 in
  -.mean *. log u

let pareto_bounded t ~alpha ~lo ~hi =
  assert (lo > 0. && hi >= lo && alpha > 0.);
  let u = unit_float t in
  let la = lo ** alpha and ha = hi ** alpha in
  (-.((u *. ha) -. (u *. la) -. ha) /. (ha *. la)) ** (-1. /. alpha)

let choose_weighted t arr =
  assert (Array.length arr > 0);
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0. arr in
  assert (total > 0.);
  let x = float t total in
  let n = Array.length arr in
  let rec go i acc =
    if i = n - 1 then snd arr.(i)
    else
      let acc = acc +. fst arr.(i) in
      if x < acc then snd arr.(i) else go (i + 1) acc
  in
  go 0 0.

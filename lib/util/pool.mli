(** A small work-stealing domain pool for fanning out independent
    evaluations (the Section 2.4 design-space sweep) across cores.

    Work is claimed in chunks from a shared atomic counter, which amortizes
    domain-spawn cost and balances uneven per-element work.  Both map
    functions preserve input order exactly, so a parallel run returns the
    same list — element for element — as a serial one; parallelism only
    reorders the evaluation, never the result. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val create : ?jobs:int -> unit -> t
(** [jobs] is the total worker count including the calling domain;
    [jobs = 1] (or any value below) runs everything serially on the caller.
    Defaults to {!default_jobs}. *)

val serial : t
(** A pool that never spawns: [create ~jobs:1 ()]. *)

val jobs : t -> int

val run_chunked : chunk:int -> t -> int -> (int -> unit) -> unit
(** [run_chunked ~chunk t n body] runs [body i] for every [i] in
    [0 .. n-1], claiming [chunk] consecutive indices per steal.  Within a
    chunk indices are processed in order; at [jobs = 1] everything runs
    in order on the caller.  Exceptions propagate after all domains join
    (first one wins). *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving map.  [chunk] (default 32) elements are claimed per
    steal.  Exceptions raised by [f] propagate after all domains join. *)

val parallel_filter_map :
  ?chunk:int -> t -> ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving filter-map with the same chunking. *)

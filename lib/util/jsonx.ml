type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let num f = if Float.is_finite f then Float f else Null

let rec normalize = function
  | Float f when not (Float.is_finite f) -> Null
  | List l -> List (List.map normalize l)
  | Obj kvs -> Obj (List.map (fun (k, v) -> (k, normalize v)) kvs)
  | v -> v

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Float.compare a b = 0 || (a = 0. && b = 0.)
  | String a, String b -> String.equal a b
  | List a, List b -> List.equal equal a b
  | Obj a, Obj b ->
      List.equal (fun (k, v) (k', v') -> String.equal k k' && equal v v') a b
  | _ -> false

(* ------------------------------ printing ------------------------------ *)

(* Shortest decimal that parses back bit-exactly; always contains '.' or
   'e' so the value re-parses as a float, not an int. *)
let float_repr f =
  let s =
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f
  in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        Buffer.add_string buf
          (if Float.is_finite f then float_repr f else "null")
    | String s -> escape_string buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go x)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* Sort object keys recursively (byte order, stable) so two spellings of
   the same object print identically; array order and number spellings
   are preserved. *)
let rec canonicalize = function
  | Obj kvs ->
      Obj
        (List.stable_sort
           (fun (a, _) (b, _) -> String.compare a b)
           (List.map (fun (k, v) -> (k, canonicalize v)) kvs))
  | List l -> List (List.map canonicalize l)
  | v -> v

let to_canonical_string v = to_string (canonicalize v)

let to_string_pretty v =
  let buf = Buffer.create 256 in
  let pad n = Buffer.add_string buf (String.make n ' ') in
  let rec go indent = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v ->
        Buffer.add_string buf (to_string v)
    | List [] -> Buffer.add_string buf "[]"
    | List l ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            go (indent + 2) x)
          l;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (indent + 2);
            escape_string buf k;
            Buffer.add_string buf ": ";
            go (indent + 2) x)
          kvs;
        Buffer.add_char buf '\n';
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string_pretty v)

(* ------------------------------ parsing ------------------------------- *)

exception Err of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let err msg = raise (Err (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else err (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> err "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else if cp < 0x10000 then (
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          if !pos >= n then err "unterminated escape";
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* surrogate pair *)
                if cp >= 0xD800 && cp <= 0xDBFF then
                  if
                    !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then (
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                    else err "invalid low surrogate")
                  else err "unpaired high surrogate"
                else cp
              in
              add_utf8 buf cp;
              go ()
          | _ -> err (Printf.sprintf "invalid escape \\%c" c))
      | c when Char.code c < 0x20 -> err "raw control byte in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then err "expected digit";
      d0
    in
    (* RFC 8259: no leading zeros in the integer part *)
    let d0 = digits () in
    if !pos - d0 > 1 && s.[d0] = '0' then err "leading zero";
    let is_float = ref false in
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      ignore (digits ()));
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        ignore (digits ())
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> err "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> err "expected ',' or ']'"
          in
          elements []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Err (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

let parse_exn s =
  match parse s with Ok v -> v | Error msg -> failwith msg

(* ------------------------------ accessors ----------------------------- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get_string = function String s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None

let get_int = function
  | Int i -> Some i
  | Float f
    when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_list = function List l -> Some l | _ -> None
let get_obj = function Obj kvs -> Some kvs | _ -> None

(** Deterministic pseudo-random number generation (splitmix64).

    The architectural simulator and the synthetic workload generators must be
    reproducible run-to-run and independent of OCaml's stdlib [Random] state,
    so they use this small self-contained generator.  Streams can be [split]
    so that every thread of a simulated workload draws from an independent
    deterministic sequence. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val bits53 : t -> int
(** The top 53 bits of one draw, as a non-negative int — exactly the bits
    behind one [float t 1.0] result ([float t 1.0 = float_of_int (bits53 t)
    /. 2^53], drawing once from the same stream).  Lets integer-threshold
    comparisons replace float ones without perturbing the sequence. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) trial; mean [(1-p)/p]. [p] must be in (0, 1]. *)

val geometric_log1mp : t -> log1mp:float -> int
(** [geometric_log1mp t ~log1mp:(log (1. -. p))] equals [geometric t p]
    for [p < 1] — same draw, same result — with the loop-invariant
    logarithm hoisted to the caller.  The simulator's inner loop uses this
    to halve its libm traffic. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pareto_bounded : t -> alpha:float -> lo:float -> hi:float -> float
(** Bounded Pareto draw in [\[lo, hi\]]; heavier tail for smaller [alpha].
    Used to model reuse-distance distributions of workloads. *)

val choose_weighted : t -> (float * 'a) array -> 'a
(** Picks an element with probability proportional to its weight.  The array
    must be non-empty with non-negative weights summing to a positive value. *)

(** Minimal JSON codec (RFC 8259 subset) for the wire protocol and the
    machine-readable CLI/bench outputs.

    The project deliberately has no third-party JSON dependency; this module
    is the one codec every producer and consumer shares, so a value printed
    anywhere in the tool parses back identically everywhere else.

    {b Numbers.}  Integers parse to {!Int} when they fit OCaml's [int];
    anything with a fraction, an exponent or outside the [int] range parses
    to {!Float}.  Floats print with the shortest decimal representation that
    round-trips bit-exactly, always containing ['.'] or ['e'] so the
    Int/Float distinction survives a print→parse cycle.

    {b Finite-float policy.}  JSON has no NaN or infinities.  A non-finite
    {!Float} prints as [null], and {!num} normalizes non-finite values to
    {!Null} at construction time, so [parse (to_string v)] equals the
    {!normalize}d form of [v] for every value.

    {b Strings} are byte sequences: printing escapes ['"'], ['\\'] and
    control bytes below [0x20]; bytes [>= 0x80] pass through unmodified
    (assumed UTF-8).  Parsing decodes the standard escapes including
    [\uXXXX] (with surrogate pairs) to UTF-8 bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion-ordered; keys should be unique *)

val num : float -> t
(** [Float f], or {!Null} when [f] is NaN or infinite. *)

val normalize : t -> t
(** Recursively replaces non-finite {!Float}s with {!Null} — the value
    {!to_string} effectively prints. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct; float
    comparison treats NaNs as equal and [-0.] as [0.]). *)

(** {1 Printing} *)

val to_string : t -> string
(** Compact, single-line. *)

val to_string_pretty : t -> string
(** 2-space indented, for human consumption ([cacti_d --json]). *)

val to_canonical_string : t -> string
(** Compact like {!to_string}, but object keys are sorted (recursively,
    byte order) so two spellings of the same object print identically —
    the routing/deduplication key for the serve layer.  Array order and
    number spellings are preserved: [Int 1] and [Float 1.] stay
    distinct. *)

val pp : Format.formatter -> t -> unit
(** [to_string_pretty] through a formatter. *)

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Whole-string parse; trailing non-whitespace is an error.  The error
    message includes the byte offset. *)

val parse_exn : string -> t
(** Raises [Failure] with the {!parse} error message. *)

(** {1 Decoding helpers}

    Total accessors used by the protocol decoders: each returns [None] on a
    shape mismatch instead of raising. *)

val member : string -> t -> t option
(** First binding of the key in an {!Obj}; [None] for other shapes. *)

val get_string : t -> string option
val get_bool : t -> bool option

val get_int : t -> int option
(** {!Int}, or an integral {!Float} that fits an [int]. *)

val get_float : t -> float option
(** {!Float} or {!Int}. *)

val get_list : t -> t list option
val get_obj : t -> (string * t) list option

(** Structured diagnostics for the solver pipeline.

    Every refusal the tool can make — an inconsistent spec, a candidate
    organization rejected mid-sweep, a solve with no surviving solution, a
    relaxation that did not converge — is expressed as a value of {!t}:
    a severity, the component that produced it, a machine-readable reason
    tag (stable, snake_case, suitable for grepping or counting) and a
    human-readable message.  The CLIs render these instead of backtraces
    and map them to documented exit codes.

    The sweep-accounting types ({!counts}, {!summary}) record what happened
    to every candidate of a design-space enumeration, so "the solver picked
    bank X" always comes with "out of N candidates, rejected for these
    reasons". *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  component : string;  (** producing subsystem, e.g. ["cache_spec"], ["bank"] *)
  reason : string;  (** machine tag, e.g. ["non_pow2_block"], ["no_solution"] *)
  message : string;  (** human-readable, single line *)
}

val make : severity -> component:string -> reason:string -> string -> t
val info : component:string -> reason:string -> string -> t
val warning : component:string -> reason:string -> string -> t
val error : component:string -> reason:string -> string -> t

val errorf :
  component:string ->
  reason:string ->
  ('a, unit, string, t) format4 ->
  'a
(** [errorf ~component ~reason fmt ...] builds an [Error] diagnostic with a
    printf-formatted message. *)

val warningf :
  component:string ->
  reason:string ->
  ('a, unit, string, t) format4 ->
  'a

val severity_to_string : severity -> string

val to_string : t -> string
(** One line: ["error[cache_spec/non_pow2_block]: block size ..."]. *)

val pp : Format.formatter -> t -> unit

val render : t list -> string
(** Newline-joined {!to_string} of each diagnostic. *)

(** {1 Design-space sweep accounting}

    One {!counts} per {!Cacti_array.Bank.enumerate}-style sweep.  The
    invariant [candidates = evaluated + geometry_rejected + page_rejected +
    area_pruned + bound_pruned + nonviable + nonfinite + raised] always
    holds. *)

type counts = {
  candidates : int;  (** organizations considered by the enumeration *)
  evaluated : int;  (** fully modeled with all-finite metrics *)
  geometry_rejected : int;
      (** failed the integer-tiling / subarray-bound / mux-chain screen *)
  page_rejected : int;  (** failed the main-memory page constraint *)
  area_pruned : int;  (** skipped by the area lower-bound prune *)
  bound_pruned : int;
      (** skipped by the multi-metric branch-and-bound prune: provably
          unable to displace the current best solution on area, access
          time or (when only dynamic energy is weighted) read energy *)
  nonviable : int;  (** electrically non-viable (e.g. DRAM signal too small) *)
  nonfinite : int;
      (** produced a NaN/infinite/negative delay, energy or area and was
          contained *)
  raised : int;  (** raised an exception and was contained *)
}

val zero_counts : counts
val add_counts : counts -> counts -> counts

val faults : counts -> int
(** [nonfinite + raised]: candidates that failed abnormally (as opposed to
    being structurally rejected). *)

val counts_to_string : counts -> string
(** e.g. ["23040 candidates: 210 evaluated; rejected: geometry 22000, page 0,
    area-pruned 700, bound-pruned 130, nonviable 0, nonfinite 0,
    raised 0"]. *)

val pp_counts : Format.formatter -> counts -> unit

(** {1 Whole-solve summary} *)

type summary = {
  sweeps : counts;  (** accumulated over every array solved *)
  cache_hits : int;  (** arrays answered from {!Cacti.Solve_cache} *)
  notes : t list;  (** non-fatal diagnostics gathered along the way *)
}

val empty_summary : summary
val merge_summary : summary -> summary -> summary
val summary_to_string : summary -> string
val pp_summary : Format.formatter -> summary -> unit

(** {1 CLI exit codes}

    The documented process exit codes shared by [cacti_cli] and
    [llc_study]. *)

val exit_ok : int  (** 0 *)

val exit_usage : int  (** 1 — bad command line *)

val exit_invalid_spec : int  (** 2 — spec validation failed *)

val exit_no_solution : int  (** 3 — valid spec, empty design space *)

(* Opt-in wall-clock phase accounting for the solver pipeline.

   Disabled by default: the only cost on the hot path is one [Atomic.get].
   When enabled (e.g. by [cacti_cli --profile]) each [time]d region adds its
   elapsed wall time to a named accumulator under a mutex, so instrumented
   regions may run concurrently on several domains. *)

type cell = { mutable seconds : float; mutable calls : int }

let enabled = Atomic.make false
let lock = Mutex.create ()
let cells : (string, cell) Hashtbl.t = Hashtbl.create 16

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let reset () =
  Mutex.protect lock (fun () -> Hashtbl.reset cells)

let record name seconds =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt cells name with
      | Some c ->
          c.seconds <- c.seconds +. seconds;
          c.calls <- c.calls + 1
      | None -> Hashtbl.replace cells name { seconds; calls = 1 })

let time name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record name (Unix.gettimeofday () -. t0))
      f
  end

let summary () =
  let rows =
    Mutex.protect lock (fun () ->
        Hashtbl.fold (fun name c acc -> (name, c.seconds, c.calls) :: acc)
          cells [])
  in
  List.sort
    (fun (_, a, _) (_, b, _) -> compare (b : float) a)
    rows

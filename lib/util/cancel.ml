type t = {
  flag : bool Atomic.t;
  deadline_at : float;  (** absolute epoch seconds; [infinity] = none *)
  parent : t option;
  reason : string;
}

exception Cancelled of string

let never =
  {
    flag = Atomic.make false;
    deadline_at = Float.infinity;
    parent = None;
    reason = "cancelled";
  }

let create ?(reason = "cancelled") ?(deadline_at = Float.infinity) ?parent ()
    =
  { flag = Atomic.make false; deadline_at; parent; reason }

let cancel t = Atomic.set t.flag true

(* The reason of the first fired token walking up the chain: an explicit
   [cancel] or a passed deadline at this level reports this token's
   reason; otherwise defer to the ancestors. *)
let rec why t =
  if
    Atomic.get t.flag
    || (t.deadline_at < Float.infinity && Unix.gettimeofday () > t.deadline_at)
  then Some t.reason
  else match t.parent with None -> None | Some p -> why p

let cancelled t = why t <> None

let check t =
  match why t with None -> () | Some reason -> raise (Cancelled reason)

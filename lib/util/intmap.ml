type t = {
  mutable keys : int array;  (** -1 = empty slot *)
  mutable vals : int array;
  mutable mask : int;  (** capacity - 1; capacity is a power of two *)
  mutable population : int;
}

let empty_key = -1

let rec pow2_ge n x = if x >= n then x else pow2_ge n (x * 2)

let create ?(capacity = 16) () =
  (* Size so the capacity hint fits under the 7/8 load ceiling. *)
  let cap = pow2_ge (max 8 (capacity + (capacity / 4))) 8 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap 0;
    mask = cap - 1;
    population = 0;
  }

let length t = t.population
let capacity t = Array.length t.keys

(* Fibonacci hashing: multiply by 2^63/phi (odd), then fold the high bits
   down with a xor-shift so the low bits used by [land mask] depend on the
   whole key.  Line indices are often sequential; this spreads them. *)
let slot t k =
  (* 2^63/phi truncated to OCaml's 63-bit int range; the product wraps
     mod 2^63 so the high bit of the usual 64-bit constant is moot. *)
  let h = k * 0x1E3779B97F4A7C15 in
  (h lxor (h lsr 29)) land t.mask

(* Walk the probe chain to [k]'s slot or the first empty one.  Top-level
   recursion on purpose: a local [let rec] capturing [keys]/[k] would be
   closure-converted and allocate per call in classic (non-flambda)
   mode. *)
let rec scan keys mask k i =
  let key = Array.unsafe_get keys i in
  if key = k || key = empty_key then i else scan keys mask k ((i + 1) land mask)

(* Index of [k]'s slot, or -1 when absent. *)
let find t k =
  let i = scan t.keys t.mask k (slot t k) in
  if Array.unsafe_get t.keys i = k then i else -1

let get t k =
  let i = scan t.keys t.mask k (slot t k) in
  if Array.unsafe_get t.keys i = k then Array.unsafe_get t.vals i else 0

let mem t k = find t k >= 0

(* Backward-shift deletion for linear probing: empty the slot, then walk
   the rest of the probe chain moving entries down when their ideal slot
   lies outside the cyclic interval (hole, current].  No tombstones, so
   chains never rot. *)
let delete_at t i =
  t.population <- t.population - 1;
  let keys = t.keys and vals = t.vals and mask = t.mask in
  let hole = ref i in
  let j = ref i in
  let continue = ref true in
  while !continue do
    j := (!j + 1) land mask;
    let kj = keys.(!j) in
    if kj = empty_key then begin
      keys.(!hole) <- empty_key;
      continue := false
    end
    else begin
      let ideal = slot t kj in
      (* Move kj into the hole iff the hole lies cyclically within
         [ideal, j), i.e. kj's probe would have visited the hole. *)
      let h = (!hole - ideal) land mask and d = (!j - ideal) land mask in
      if h <= d then begin
        keys.(!hole) <- kj;
        vals.(!hole) <- vals.(!j);
        hole := !j
      end
    end
  done

let grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = Array.length old_keys * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  let keys = t.keys and vals = t.vals and mask = t.mask in
  Array.iteri
    (fun i k ->
      if k <> empty_key then begin
        let rec probe j =
          if keys.(j) = empty_key then begin
            keys.(j) <- k;
            vals.(j) <- old_vals.(i)
          end
          else probe ((j + 1) land mask)
        in
        probe (slot t k)
      end)
    old_keys

let set t k v =
  if v = 0 then begin
    let i = find t k in
    if i >= 0 then delete_at t i
  end
  else begin
    let keys = t.keys in
    let i = scan keys t.mask k (slot t k) in
    if Array.unsafe_get keys i = k then Array.unsafe_set t.vals i v
    else begin
      Array.unsafe_set keys i k;
      Array.unsafe_set t.vals i v;
      t.population <- t.population + 1;
      (* Keep load under 7/8 so probe chains stay short. *)
      if t.population * 8 > (t.mask + 1) * 7 then grow t
    end
  end

let remove t k = set t k 0

let iter f t =
  Array.iteri (fun i k -> if k <> empty_key then f k t.vals.(i)) t.keys

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) 0;
  t.population <- 0

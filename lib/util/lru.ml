(* Mutex-guarded LRU memo table.

   Extracted from Solve_cache so every cache in the tree — selected-bank
   memo, mat sub-solutions, screen contexts, the serve layer's response
   cache — shares one audited implementation.  One mutex per table guards
   the hashtable, the hit/miss counters and the recency clock; values are
   expected to be immutable so a reference handed out under the lock stays
   valid after it is released. *)

type stats = { hits : int; misses : int }

type 'v entry = {
  value : 'v;
  mutable stamp : int;  (** last-use tick, for LRU eviction *)
}

type ('k, 'v) t = {
  table : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable tick : int;
  mutable cap : int option;
}

let create ?(size = 64) () =
  {
    table = Hashtbl.create size;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    tick = 0;
    cap = None;
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* Evict least-recently-used entries until the table fits the cap.  A
   full scan per eviction is O(n), but evictions only happen on inserts
   past the cap and the cap is thousands at most — the scan is noise next
   to the work that produced the entry. *)
let enforce_cap_locked t =
  match t.cap with
  | None -> ()
  | Some c ->
      while Hashtbl.length t.table > c do
        let victim =
          Hashtbl.fold
            (fun k e acc ->
              match acc with
              | Some (_, stamp) when stamp <= e.stamp -> acc
              | _ -> Some (k, e.stamp))
            t.table None
        in
        match victim with
        | Some (k, _) -> Hashtbl.remove t.table k
        | None -> ()
      done

let insert_locked t key value =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key { value; stamp = t.tick };
  enforce_cap_locked t

(* Counted lookup: a miss here is expected to be followed by a compute +
   [publish]. *)
let find t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          t.hits <- t.hits + 1;
          touch t e;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Uncounted presence probe: no hit/miss bump, no recency touch — for
   callers (the pre-solver) that must not skew the hit-rate the real
   request stream reports. *)
let mem t key =
  Mutex.protect t.lock (fun () -> Hashtbl.mem t.table key)

(* First store wins: two racing misses of the same key both compute the
   (identical, deterministic) value; later hits share one copy.  The
   adopting lookup is not counted as a hit — the caller did compute.
   [Hashtbl.add], not [insert_locked]'s [replace]: the key was just
   probed absent under the same lock, and add skips replace's removal
   pass (this is the hot store of every cold sweep candidate). *)
let publish t key value =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some e ->
          touch t e;
          e.value
      | None ->
          t.tick <- t.tick + 1;
          Hashtbl.add t.table key { value; stamp = t.tick };
          enforce_cap_locked t;
          value)

let memoize t key compute =
  match find t key with Some v -> v | None -> publish t key (compute ())

(* Unconditional replace (last store wins), for entries that are updated
   in place — e.g. a screen context re-instantiated for a new row count. *)
let put t key value =
  Mutex.protect t.lock (fun () -> insert_locked t key value)

let stats t =
  Mutex.protect t.lock (fun () -> { hits = t.hits; misses = t.misses })

let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.table)
let capacity t = Mutex.protect t.lock (fun () -> t.cap)

let set_capacity t ~what c =
  (match c with
  | Some c when c < 0 -> invalid_arg (Printf.sprintf "%s: negative cap" what)
  | _ -> ());
  Mutex.protect t.lock (fun () ->
      t.cap <- c;
      enforce_cap_locked t)

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      t.hits <- 0;
      t.misses <- 0)

(* Entries in least-recently-used-first order (re-inserting in dump order
   reconstructs the LRU order). *)
let dump t =
  let entries =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k e acc -> (k, e.value, e.stamp) :: acc) t.table [])
  in
  List.sort (fun (_, _, a) (_, _, b) -> compare (a : int) b) entries
  |> List.map (fun (k, v, _) -> (k, v))

let restore t entries =
  Mutex.protect t.lock (fun () ->
      List.iter
        (fun (k, v) ->
          if not (Hashtbl.mem t.table k) then insert_locked t k v)
        entries)

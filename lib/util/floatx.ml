exception Non_finite of string

let finite ~what x =
  if Float.is_finite x then x
  else raise (Non_finite (Printf.sprintf "%s is %h" what x))

let finite_pos ~what x =
  if Float.is_finite x && x >= 0. then x
  else raise (Non_finite (Printf.sprintf "%s is %h" what x))

let log2 x = log x /. log 2.

let clog2 n =
  assert (n > 0);
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let pow2_ge n =
  assert (n > 0);
  let rec go v = if v >= n then v else go (v * 2) in
  go 1

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let rel_err ~actual ~model =
  if actual = 0. then if model = 0. then 0. else Float.infinity
  else (model -. actual) /. actual

let approx ?(tol = 1e-9) a b =
  let scale = max (Float.abs a) (Float.abs b) in
  scale = 0. || Float.abs (a -. b) <= tol *. scale

let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> invalid_arg "Floatx.mean: empty"
  | l -> sum l /. float_of_int (List.length l)

let geomean = function
  | [] -> invalid_arg "Floatx.geomean: empty"
  | l ->
      List.iter (fun x -> if x <= 0. then invalid_arg "Floatx.geomean: nonpositive") l;
      exp (mean (List.map log l))

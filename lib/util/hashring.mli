(** Consistent-hash ring with virtual nodes.

    Routes string keys to one of [n] shards.  Routing is a pure,
    platform-independent function of [(n, vnodes, key)] (positions are
    MD5-derived), so shard assignment survives restarts and agrees across
    fleet peers.  Growing or shrinking the shard count remaps only
    ~[1/n] of the key space: the ring for [n+1] shards is the ring for
    [n] shards plus the new shard's own points. *)

type t

val create : ?vnodes:int -> int -> t
(** [create ?vnodes n] builds the ring for shards [0 .. n-1], each owning
    [vnodes] (default 64) points.  Raises [Invalid_argument] when [n] or
    [vnodes] is below 1. *)

val lookup : t -> string -> int
(** Shard index owning [key]: the owner of the first ring point at or
    after MD5[key], wrapping around. *)

val shards : t -> int
(** Shard count the ring was built for. *)

val vnodes : t -> int
(** Virtual nodes per shard. *)

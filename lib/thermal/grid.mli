(** Steady-state compact thermal model (HotSpot-style RC network).

    The die stack is discretized into an [nx × ny] lateral grid per layer;
    each cell couples laterally within its layer and vertically to the
    layers above/below through conductances derived from the material's
    thermal conductivity and geometry.  The top of the stack connects to
    ambient through a heat-sink conductance.  Power is injected per cell
    and the steady-state temperature field is solved by Gauss–Seidel
    relaxation. *)

type layer = {
  lname : string;
  thickness : float;  (** m *)
  conductivity : float;  (** W/(m·K) *)
  volumetric_heat : float;  (** J/(m³·K); unused at steady state, kept for
                                future transient support *)
}

val silicon : layer
val tim : layer
(** thermal interface material *)

val copper_spreader : layer
val die_bond : layer
(** face-to-face bond / TSV layer between stacked dies *)

type t

val create :
  nx:int ->
  ny:int ->
  cell_w:float ->
  cell_h:float ->
  layers:layer list ->
  sink_conductance:float ->
  ambient:float ->
  t
(** [layers] are ordered bottom (furthest from the sink) to top; the sink
    attaches above the last layer.  [sink_conductance] is W/K for the whole
    top surface. *)

val set_power : t -> layer:int -> x:int -> y:int -> float -> unit

val solve_diag :
  ?tol:float -> ?max_iter:int -> t -> (int, Cacti_util.Diag.t) result
(** Gauss–Seidel to [tol] (K, default 1e-4) or [max_iter] (default 20000)
    sweeps.  [Ok] carries the number of sweeps performed.  On
    non-convergence the grid keeps the best-effort temperature field of the
    last sweep and [Error] carries a warning diagnostic with the final
    residual and iteration count; convergence is always judged on the last
    sweep's residual. *)

val solve : ?strict:bool -> ?tol:float -> ?max_iter:int -> t -> unit
(** {!solve_diag} for callers that only want the temperatures: the
    best-effort field is kept either way.  [strict] (default false) turns
    non-convergence into [Failure]. *)

val temperature : t -> layer:int -> x:int -> y:int -> float
val max_temperature : t -> float
val max_in_layer : t -> layer:int -> float

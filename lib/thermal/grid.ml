type layer = {
  lname : string;
  thickness : float;
  conductivity : float;
  volumetric_heat : float;
}

let silicon =
  { lname = "silicon"; thickness = 150e-6; conductivity = 130.; volumetric_heat = 1.75e6 }

let tim = { lname = "TIM"; thickness = 20e-6; conductivity = 4.; volumetric_heat = 4e6 }

let copper_spreader =
  { lname = "spreader"; thickness = 1e-3; conductivity = 400.; volumetric_heat = 3.55e6 }

let die_bond =
  { lname = "bond"; thickness = 20e-6; conductivity = 10.; volumetric_heat = 2e6 }

type t = {
  nx : int;
  ny : int;
  nl : int;
  cell_w : float;
  cell_h : float;
  layers : layer array;
  sink_conductance : float;
  ambient : float;
  power : float array;
  temp : float array;
  g_lat_x : float array;  (** per layer *)
  g_lat_y : float array;
  g_vert : float array;  (** between layer l and l+1, length nl (last = sink) *)
}

let idx t l x y = (l * t.nx * t.ny) + (y * t.nx) + x

let create ~nx ~ny ~cell_w ~cell_h ~layers ~sink_conductance ~ambient =
  let layers = Array.of_list layers in
  let nl = Array.length layers in
  if nl = 0 || nx <= 0 || ny <= 0 then invalid_arg "Grid.create";
  let g_lat_x =
    Array.map
      (fun l -> l.conductivity *. l.thickness *. cell_h /. cell_w)
      layers
  in
  let g_lat_y =
    Array.map
      (fun l -> l.conductivity *. l.thickness *. cell_w /. cell_h)
      layers
  in
  let area = cell_w *. cell_h in
  let g_vert =
    Array.init nl (fun i ->
        if i = nl - 1 then sink_conductance /. float_of_int (nx * ny)
        else
          let a = layers.(i) and b = layers.(i + 1) in
          let r =
            (0.5 *. a.thickness /. (a.conductivity *. area))
            +. (0.5 *. b.thickness /. (b.conductivity *. area))
          in
          1. /. r)
  in
  {
    nx;
    ny;
    nl;
    cell_w;
    cell_h;
    layers;
    sink_conductance;
    ambient;
    power = Array.make (nl * nx * ny) 0.;
    temp = Array.make (nl * nx * ny) ambient;
    g_lat_x;
    g_lat_y;
    g_vert;
  }

let set_power t ~layer ~x ~y p = t.power.(idx t layer x y) <- p

(* One Gauss–Seidel sweep; returns the largest per-cell temperature change. *)
let sweep t =
  let changed = ref 0. in
  for l = 0 to t.nl - 1 do
    for y = 0 to t.ny - 1 do
      for x = 0 to t.nx - 1 do
        let i = idx t l x y in
        let num = ref t.power.(i) and den = ref 0. in
        let couple g j =
          num := !num +. (g *. t.temp.(j));
          den := !den +. g
        in
        if x > 0 then couple t.g_lat_x.(l) (idx t l (x - 1) y);
        if x < t.nx - 1 then couple t.g_lat_x.(l) (idx t l (x + 1) y);
        if y > 0 then couple t.g_lat_y.(l) (idx t l x (y - 1));
        if y < t.ny - 1 then couple t.g_lat_y.(l) (idx t l x (y + 1));
        if l > 0 then couple t.g_vert.(l - 1) (idx t (l - 1) x y);
        if l < t.nl - 1 then couple t.g_vert.(l) (idx t (l + 1) x y)
        else begin
          (* top layer couples to ambient through the sink *)
          num := !num +. (t.g_vert.(l) *. t.ambient);
          den := !den +. t.g_vert.(l)
        end;
        let nt = !num /. !den in
        let d = Float.abs (nt -. t.temp.(i)) in
        if d > !changed then changed := d;
        t.temp.(i) <- nt
      done
    done
  done;
  !changed

let solve_diag ?(tol = 1e-4) ?(max_iter = 20_000) t =
  let residual = ref Float.infinity in
  let iter = ref 0 in
  (* Convergence is judged on the residual of the last sweep actually
     performed, whichever condition ends the loop. *)
  while !iter < max_iter && !residual > tol do
    residual := sweep t;
    incr iter
  done;
  if !residual <= tol then Ok !iter
  else
    Error
      (Cacti_util.Diag.warningf ~component:"thermal" ~reason:"non_convergence"
         "Gauss-Seidel residual %.3g K still above tolerance %.3g K after %d \
          iterations; temperatures are best-effort"
         !residual tol !iter)

let solve ?(strict = false) ?tol ?max_iter t =
  match solve_diag ?tol ?max_iter t with
  | Ok _ -> ()
  | Error d -> if strict then failwith (Cacti_util.Diag.to_string d)

let temperature t ~layer ~x ~y = t.temp.(idx t layer x y)

let max_temperature t = Array.fold_left max neg_infinity t.temp

let max_in_layer t ~layer =
  let m = ref neg_infinity in
  for y = 0 to t.ny - 1 do
    for x = 0 to t.nx - 1 do
      m := max !m (temperature t ~layer ~x ~y)
    done
  done;
  !m

(** Staged per-spec constants for the analytical solver.

    A {!t} gathers everything in the candidate-evaluation path that depends
    only on the technology node, the cell type and the repeater delay
    penalty — device and cell parameters, the area model, local wire RC,
    the semi-global H-tree {!Repeater.design} (a spacing × sizing scan that
    dominates per-candidate cost when recomputed inline), port timing,
    control-logic inverter equivalents and the sense-amp designs for every
    bitline-mux degree.  Computing it once per design-space sweep and
    threading it through {!Cacti_array.Mat} / {!Cacti_array.Bank} leaves
    only flat float math in the per-candidate inner loop.

    Every field is produced by the same pure expressions the unstaged path
    used, so staged evaluation is bit-identical to inline evaluation. *)

type t = {
  ram : Cacti_tech.Cell.ram_kind;
  is_dram : bool;
  tech : Cacti_tech.Technology.t;
  feature : float;
  cell : Cacti_tech.Cell.t;
  periph : Cacti_tech.Device.t;
  area : Area_model.t;
  wire_local : Cacti_tech.Wire.t;
  cell_w : float;  (** cell width, m *)
  cell_h : float;  (** cell height, m *)
  repeater : Repeater.t;  (** semi-global H-tree repeater design *)
  t_port : float;  (** H-tree port latency (3 FO4), s *)
  ctl_inv : Gate.t;  (** control-block inverter equivalent (10 F) *)
  wr_drv : Gate.t;  (** write-driver inverter equivalent (24 F) *)
  sense_by_deg : (int * Sense_amp.t) list;
      (** sense-amp design per bitline-mux degree *)
  mux_bl_by_deg : (int * Mux.t) list;
      (** bitline output mux per bitline-mux degree (drives the matching
          staged sense amp) *)
  mux1_by_ndsam : (int * Mux.t) list;
      (** first-level sense-amp output mux per partition degree *)
  mux2_by_ndsam : (int * Mux.t) list;
      (** second-level sense-amp output mux per partition degree *)
}

val staged_ndsams : int list
(** Output-mux degrees covered by the staged mux tables (the
    {!Cacti_array.Org} partition grid). *)

val make :
  tech:Cacti_tech.Technology.t ->
  ram:Cacti_tech.Cell.ram_kind ->
  max_repeater_delay_penalty:float ->
  unit ->
  t

val sense : t -> deg_bl_mux:int -> Sense_amp.t
(** The staged sense-amp design for the given (effective) bitline-mux
    degree; falls back to computing one on demand for degrees outside the
    staged table. *)

val mux_bl : t -> deg_bl_mux:int -> Mux.t
(** The staged bitline output mux for the given (effective) bitline-mux
    degree; on-demand fallback outside the staged table. *)

val mux1 : t -> ndsam:int -> Mux.t
(** The staged first-level output mux for the given partition degree;
    on-demand fallback outside the staged table. *)

val mux2 : t -> ndsam:int -> Mux.t
(** The staged second-level output mux for the given partition degree;
    on-demand fallback outside the staged table. *)

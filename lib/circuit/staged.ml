open Cacti_tech

(* Per-spec constants of the analytical model, computed once per
   (technology, cell type, repeater-penalty) tuple and shared by every
   candidate organization of a design-space sweep.  Everything here is a
   pure function of its inputs, so evaluating a candidate through a staged
   record is bit-identical to recomputing the constants inline. *)

type t = {
  ram : Cell.ram_kind;
  is_dram : bool;
  tech : Technology.t;
  feature : float;
  cell : Cell.t;
  periph : Device.t;
  area : Area_model.t;
  wire_local : Wire.t;
  cell_w : float;
  cell_h : float;
  repeater : Repeater.t;
      (* semi-global H-tree repeater design under the spec's delay
         penalty: the single most expensive per-candidate recomputation
         (a spacing x sizing scan) in the unstaged evaluator *)
  t_port : float;
  ctl_inv : Gate.t;
  wr_drv : Gate.t;
  sense_by_deg : (int * Sense_amp.t) list;
  mux_bl_by_deg : (int * Mux.t) list;
  mux1_by_ndsam : (int * Mux.t) list;
  mux2_by_ndsam : (int * Mux.t) list;
}

let make_sense ~is_dram ~periph ~area ~feature ~cell_pitch deg =
  Sense_amp.make ~device:periph ~area ~feature
    ~cell_pitch:(if is_dram then 2. *. cell_pitch else cell_pitch)
    ~deg_bl_mux:(if is_dram then 1 else deg) ()

(* The output-mux degrees of the partition grid ({!Cacti_array.Org.ndsams});
   degrees outside the table fall back to an on-demand computation of the
   same pure expression, so staging them is invisible to the result. *)
let staged_ndsams = [ 1; 2; 3; 4; 6; 8; 12; 16 ]

let make ~tech ~ram ~max_repeater_delay_penalty () =
  let cell = Technology.cell tech ram in
  let periph = Technology.peripheral_device tech ram in
  let feature = Technology.feature_size tech in
  let area =
    Area_model.create ~feature_size:feature ~l_gate:periph.Device.l_phy
  in
  let is_dram = Cell.is_dram ram in
  let cell_w = Cell.width cell ~feature_size:feature in
  let cell_h = Cell.height cell ~feature_size:feature in
  let wire_local = Technology.wire tech Wire.Local in
  let repeater =
    Repeater.design ~device:periph ~area ~feature
      ~max_delay_penalty:max_repeater_delay_penalty
      ~wire:(Technology.wire tech Wire.Semi_global) ()
  in
  let t_port = 3. *. Technology.fo4 tech periph.Device.kind in
  let ctl_inv = Gate.inverter ~area periph ~w_n:(10. *. feature) in
  let wr_drv = Gate.inverter ~area periph ~w_n:(24. *. feature) in
  let degs = if is_dram then [ 1 ] else [ 1; 2; 4; 8 ] in
  let sense_by_deg =
    List.map
      (fun d ->
        (d, make_sense ~is_dram ~periph ~area ~feature ~cell_pitch:cell_w d))
      degs
  in
  let mux_bl_by_deg =
    List.map
      (fun d ->
        let s = List.assoc d sense_by_deg in
        ( d,
          Mux.pass_gate_mux ~device:periph ~area ~feature ~degree:d
            ~c_in_next:s.Sense_amp.c_input () ))
      degs
  in
  let mux1_by_ndsam =
    List.map
      (fun n ->
        ( n,
          Mux.pass_gate_mux ~device:periph ~area ~feature ~degree:n
            ~c_in_next:(20. *. feature *. periph.Device.c_gate) () ))
      staged_ndsams
  in
  let mux2_by_ndsam =
    List.map
      (fun n ->
        ( n,
          Mux.pass_gate_mux ~device:periph ~area ~feature ~degree:n
            ~c_in_next:(30. *. feature *. periph.Device.c_gate) () ))
      staged_ndsams
  in
  {
    ram;
    is_dram;
    tech;
    feature;
    cell;
    periph;
    area;
    wire_local;
    cell_w;
    cell_h;
    repeater;
    t_port;
    ctl_inv;
    wr_drv;
    sense_by_deg;
    mux_bl_by_deg;
    mux1_by_ndsam;
    mux2_by_ndsam;
  }

let sense t ~deg_bl_mux =
  match List.assoc_opt deg_bl_mux t.sense_by_deg with
  | Some s -> s
  | None ->
      (* Unknown mux degree (not in the staged table): compute on demand;
         same expression as the staged entries, so still bit-identical. *)
      make_sense ~is_dram:t.is_dram ~periph:t.periph ~area:t.area
        ~feature:t.feature ~cell_pitch:t.cell_w deg_bl_mux

let mux_bl t ~deg_bl_mux =
  match List.assoc_opt deg_bl_mux t.mux_bl_by_deg with
  | Some m -> m
  | None ->
      Mux.pass_gate_mux ~device:t.periph ~area:t.area ~feature:t.feature
        ~degree:deg_bl_mux
        ~c_in_next:(sense t ~deg_bl_mux).Sense_amp.c_input ()

let mux1 t ~ndsam =
  match List.assoc_opt ndsam t.mux1_by_ndsam with
  | Some m -> m
  | None ->
      Mux.pass_gate_mux ~device:t.periph ~area:t.area ~feature:t.feature
        ~degree:ndsam
        ~c_in_next:(20. *. t.feature *. t.periph.Device.c_gate) ()

let mux2 t ~ndsam =
  match List.assoc_opt ndsam t.mux2_by_ndsam with
  | Some m -> m
  | None ->
      Mux.pass_gate_mux ~device:t.periph ~area:t.area ~feature:t.feature
        ~degree:ndsam
        ~c_in_next:(30. *. t.feature *. t.periph.Device.c_gate) ()

open Cacti_tech

type t = {
  c_input : float;
  c_latch : float;
  gm_eff : float;
  vdd : float;
  energy : float;
  leakage : float;
  area : float;
}

let amplify t ~signal =
  let signal = Cacti_util.Floatx.clamp ~lo:1e-3 ~hi:(t.vdd /. 2.) signal in
  t.c_latch /. t.gm_eff *. log (t.vdd /. 2. /. signal)

let make ~device ~area ~feature ~cell_pitch ~deg_bl_mux () =
  let d = device in
  (* Cross-coupled pair + precharge/equalize + enable: model as four devices
     of 8 F and two of 4 F. *)
  let w_pair = 16. *. feature in
  let w_small = 4. *. feature in
  let c_latch =
    (4. *. w_pair *. d.Device.c_gate) +. (2. *. w_pair *. d.Device.c_drain)
  in
  let c_input = (w_pair *. d.Device.c_drain) +. (w_small *. d.Device.c_drain) in
  (* The latch starts amplifying near the trip point where the pair is only
     partially on; an effective-gm derating captures that plus enable
     overhead. *)
  let gm_eff = 0.3 *. Device.gm_n d *. w_pair in
  let vdd = d.Device.vdd in
  let energy = c_latch *. vdd *. vdd in
  let leakage =
    Device.leakage_power_inverter d ~w_n:w_pair ~w_p:w_pair *. 0.5
  in
  let strip_height = float_of_int deg_bl_mux *. cell_pitch in
  let a =
    Area_model.gate_area area
      ~max_height:(max strip_height (8. *. feature))
      [ w_pair; w_pair; w_pair; w_pair; w_small; w_small ]
  in
  { c_input; c_latch; gm_eff; vdd; energy; leakage; area = a }

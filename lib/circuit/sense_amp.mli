(** Latch-type differential sense amplifier.

    Amplification time follows the standard regenerative-latch model
    [t = (C_latch / g_m) · ln(V_full / V_signal)]: the smaller the input
    signal developed on the bitlines, the longer amplification takes.  The
    layout is pitch-matched: one amplifier must fit under
    [deg_bl_mux] bitline-pair pitches, folding if necessary. *)

type t = {
  c_input : float;  (** loading each bitline sees from the amp, F *)
  c_latch : float;  (** F, regenerative-latch load *)
  gm_eff : float;  (** S, effective transconductance of the pair *)
  vdd : float;  (** V *)
  energy : float;  (** J per sensing operation *)
  leakage : float;  (** W *)
  area : float;  (** m² *)
}
(** Plain data (no closures): values survive {!Marshal}, which the
    solve-cache persistence relies on. *)

val amplify : t -> signal:float -> float
(** s, to full swing from [signal] V. *)

val make :
  device:Cacti_tech.Device.t ->
  area:Area_model.t ->
  feature:float ->
  cell_pitch:float ->
  deg_bl_mux:int ->
  unit ->
  t
(** [cell_pitch] is the memory-cell width (one bitline pitch for an open
    array, two for folded DRAM — the caller passes the effective pitch the
    amplifier column occupies). *)
